//! Derived operators of or-NRA.
//!
//! Section 7 describes the OR-SML implementation's libraries of derived
//! functions: "membership test, set difference, inclusion test, cartesian
//! product, etc., and their analogs for or-sets which … are definable in
//! or-NRA⁺".  This module provides those definitions as combinators that
//! build [`Morphism`](crate::morphism::Morphism)s, including the `powerset`-from-`alpha` construction of
//! Proposition 2.1.
//!
//! Everything here elaborates to plain Figure-1 syntax — no new evaluator
//! cases are introduced — so these definitions double as executable evidence
//! that the primitives of or-NRA suffice for ordinary database work.

use or_object::Value;

use crate::morphism::{Morphism as M, Prim};

// ---------------------------------------------------------------------------
// generic plumbing
// ---------------------------------------------------------------------------

/// `swap : s × t → t × s`.
pub fn swap() -> M {
    M::pair(M::Proj2, M::Proj1)
}

/// `f × g : s × u → t × v` — apply `f` to the first component and `g` to the
/// second.
pub fn parallel(f: M, g: M) -> M {
    M::pair(M::compose(f, M::Proj1), M::compose(g, M::Proj2))
}

/// `ρ₁ : {s} × t → {s × t}` — definable from `ρ₂` by swapping
/// (the set analogue of the paper's remark about `orρ₁`).
pub fn rho1() -> M {
    swap().then(M::Rho2).then(M::map(swap()))
}

/// `orρ₁ : <s> × t → <s × t>` — the paper's definition
/// `ormap(⟨π₂, π₁⟩) ∘ orρ₂ ∘ ⟨π₂, π₁⟩`.
pub fn or_rho1() -> M {
    swap().then(M::OrRho2).then(M::ormap(swap()))
}

/// The "or-cartesian-pair" `orcp : <s> × <t> → <s × t>` used in the proof of
/// Theorem 5.1: pair every alternative of the first or-set with every
/// alternative of the second.
pub fn or_cartesian_pair() -> M {
    M::OrRho2.then(M::ormap(or_rho1())).then(M::OrMu)
}

// ---------------------------------------------------------------------------
// boolean helpers
// ---------------------------------------------------------------------------

/// The constantly-true predicate.
pub fn always() -> M {
    M::constant(Value::Bool(true))
}

/// Negate a predicate.
pub fn negate(p: M) -> M {
    p.then(M::Prim(Prim::Not))
}

/// Conjunction of two predicates over the same input.
pub fn both(p: M, q: M) -> M {
    M::pair(p, q).then(M::Prim(Prim::And))
}

/// Disjunction of two predicates over the same input.
pub fn either(p: M, q: M) -> M {
    M::pair(p, q).then(M::Prim(Prim::Or))
}

// ---------------------------------------------------------------------------
// set operators
// ---------------------------------------------------------------------------

/// `select(p) : {s} → {s}` — keep the elements satisfying `p`
/// (`μ ∘ map(cond(p, η, K{} ∘ !))`).
pub fn select(p: M) -> M {
    M::map(M::cond(p, M::Eta, M::KEmptySet.after_bang())).then(M::Mu)
}

/// `isempty : {s} → bool` — equality with the empty set.
pub fn is_empty() -> M {
    M::pair(M::Id, M::KEmptySet.after_bang()).then(M::Eq)
}

/// `nonempty : {s} → bool`.
pub fn non_empty() -> M {
    negate(is_empty())
}

/// `member : s × {s} → bool` — is the first component an element of the
/// second?
pub fn member() -> M {
    M::Rho2.then(select(M::Eq)).then(non_empty())
}

/// `subset : {s} × {s} → bool` — is every element of the first set a member
/// of the second?
pub fn subset() -> M {
    // pair each element a of A with B, drop those that are members, and
    // check that nothing remains
    rho1().then(select(negate(member()))).then(is_empty())
}

/// `set_eq : {s} × {s} → bool` — extensional equality via mutual inclusion
/// (structural equality `Eq` already coincides with it on canonical values;
/// this derived version exists to exercise the algebra).
pub fn set_eq() -> M {
    both(subset(), swap().then(subset()))
}

/// `intersect : {s} × {s} → {s}`.
pub fn intersect() -> M {
    rho1().then(select(member())).then(M::map(M::Proj1))
}

/// `difference : {s} × {s} → {s}`.
pub fn difference() -> M {
    rho1().then(select(negate(member()))).then(M::map(M::Proj1))
}

/// `cartesian : {s} × {t} → {s × t}`.
pub fn cartesian_product() -> M {
    rho1().then(M::map(M::Rho2)).then(M::Mu)
}

/// `exists(p) : {s} → bool` — does some element satisfy `p`?
pub fn exists(p: M) -> M {
    select(p).then(non_empty())
}

/// `forall(p) : {s} → bool` — do all elements satisfy `p`?
pub fn forall(p: M) -> M {
    select(negate(p)).then(is_empty())
}

// ---------------------------------------------------------------------------
// or-set operators
// ---------------------------------------------------------------------------

/// `or_select(p) : <s> → <s>` — keep the alternatives satisfying `p`
/// (`orμ ∘ ormap(cond(p, orη, K<> ∘ !))`) — the "cheap designs" pattern of
/// Section 2.
pub fn or_select(p: M) -> M {
    M::ormap(M::cond(p, M::OrEta, M::KEmptyOrSet.after_bang())).then(M::OrMu)
}

/// `or_isempty : <s> → bool` — is the or-set the inconsistent `< >`?
pub fn or_is_empty() -> M {
    M::pair(M::Id, M::KEmptyOrSet.after_bang()).then(M::Eq)
}

/// `or_nonempty : <s> → bool`.
pub fn or_non_empty() -> M {
    negate(or_is_empty())
}

/// `or_member : s × <s> → bool` — is the first component one of the
/// alternatives?
pub fn or_member() -> M {
    M::OrRho2.then(or_select(M::Eq)).then(or_non_empty())
}

/// `or_exists(p) : <s> → bool` — could the conceptual value satisfy `p`?
/// (the "possibly" modality of existential queries, Section 6).
pub fn or_exists(p: M) -> M {
    or_select(p).then(or_non_empty())
}

/// `or_forall(p) : <s> → bool` — must the conceptual value satisfy `p`?
/// (the "certainly" modality).
pub fn or_forall(p: M) -> M {
    or_select(negate(p)).then(or_is_empty())
}

/// `or_intersect : <s> × <s> → <s>` — alternatives common to both.
pub fn or_intersect() -> M {
    or_rho1()
        .then(or_select(or_member()))
        .then(M::ormap(M::Proj1))
}

/// `or_difference : <s> × <s> → <s>`.
pub fn or_difference() -> M {
    or_rho1()
        .then(or_select(negate(or_member())))
        .then(M::ormap(M::Proj1))
}

/// `or_subset : <s> × <s> → bool`.
pub fn or_subset() -> M {
    or_rho1()
        .then(or_select(negate(or_member())))
        .then(or_is_empty())
}

// ---------------------------------------------------------------------------
// Proposition 2.1: powerset from alpha
// ---------------------------------------------------------------------------

/// `powerset : {s} → {{s}}` defined from `alpha`, following the proof of
/// Proposition 2.1:
///
/// ```text
/// powerset = map(μ) ∘ ortoset ∘ α ∘ map(or∪ ∘ ⟨orη ∘ K{} ∘ !, orη ∘ η⟩)
/// ```
///
/// each element `x` is replaced by the two-way choice `<{}, {x}>`; `α` then
/// enumerates every combination of choices (2ⁿ of them) and the final
/// `map(μ)` flattens each combination into the corresponding subset.  (The
/// paper's proof sketch omits the final flattening, which is needed to land
/// in `{{s}}` rather than `{{{s}}}`.)
pub fn powerset_via_alpha() -> M {
    let two_way_choice = M::pair(
        M::KEmptySet.after_bang().then(M::OrEta),
        M::Eta.then(M::OrEta),
    )
    .then(M::OrUnion);
    M::map(two_way_choice)
        .then(M::Alpha)
        .then(M::OrToSet)
        .then(M::map(M::Mu))
}

// A note on the converse direction of Proposition 2.1 (α from powerset).
//
// The paper's proof sketch selects, from the powerset of all occurring
// elements, the subsets whose cardinality does not exceed the number of
// member or-sets and which intersect every member or-set.  During the
// reproduction we found that this characterization admits sets that are not
// images of any choice function (e.g. for the family <1,2>, <3,5>, <3,6> the
// set {1,2,3} passes both tests but α never produces it, because a choice
// picks only one of 1 and 2).  A correct definition in
// NRA(powerset, ortoset, settoor) exists — quantify over sub-relations of the
// membership relation that are total and functional on the family, which
// powerset over a cartesian product makes possible — but it is not needed by
// any experiment, so we only reproduce the (clean) powerset-from-α direction
// executably (experiment E1).

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::infer::output_type;
    use or_object::Type;

    fn pair_of_sets(a: &[i64], b: &[i64]) -> Value {
        Value::pair(
            Value::int_set(a.iter().copied()),
            Value::int_set(b.iter().copied()),
        )
    }

    #[test]
    fn member_and_subset_work() {
        let v = Value::pair(Value::Int(2), Value::int_set([1, 2, 3]));
        assert_eq!(eval(&member(), &v).unwrap(), Value::Bool(true));
        let v = Value::pair(Value::Int(5), Value::int_set([1, 2, 3]));
        assert_eq!(eval(&member(), &v).unwrap(), Value::Bool(false));

        assert_eq!(
            eval(&subset(), &pair_of_sets(&[1, 2], &[1, 2, 3])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&subset(), &pair_of_sets(&[1, 4], &[1, 2, 3])).unwrap(),
            Value::Bool(false)
        );
        // the empty set is a subset of everything
        assert_eq!(
            eval(&subset(), &pair_of_sets(&[], &[1])).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn intersection_difference_product() {
        assert_eq!(
            eval(&intersect(), &pair_of_sets(&[1, 2, 3], &[2, 3, 4])).unwrap(),
            Value::int_set([2, 3])
        );
        assert_eq!(
            eval(&difference(), &pair_of_sets(&[1, 2, 3], &[2, 3, 4])).unwrap(),
            Value::int_set([1])
        );
        let prod = eval(&cartesian_product(), &pair_of_sets(&[1, 2], &[3, 4])).unwrap();
        assert_eq!(prod.elements().unwrap().len(), 4);
    }

    #[test]
    fn exists_and_forall() {
        let positive = M::pair(M::constant(Value::Int(0)), M::Id).then(M::Prim(Prim::Lt));
        assert_eq!(
            eval(&exists(positive.clone()), &Value::int_set([-1, 0, 3])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&forall(positive.clone()), &Value::int_set([-1, 0, 3])).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&forall(positive), &Value::int_set([1, 2])).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn or_set_analogues() {
        let cheap = M::pair(M::Id, M::constant(Value::Int(100))).then(M::Prim(Prim::Leq));
        assert_eq!(
            eval(&or_select(cheap.clone()), &Value::int_orset([50, 150, 99])).unwrap(),
            Value::int_orset([50, 99])
        );
        assert_eq!(
            eval(&or_exists(cheap.clone()), &Value::int_orset([150, 99])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&or_forall(cheap), &Value::int_orset([150, 99])).unwrap(),
            Value::Bool(false)
        );
        let v = Value::pair(Value::Int(2), Value::int_orset([1, 2]));
        assert_eq!(eval(&or_member(), &v).unwrap(), Value::Bool(true));
        let v = Value::pair(Value::int_orset([1, 2, 3]), Value::int_orset([2, 3, 4]));
        assert_eq!(eval(&or_intersect(), &v).unwrap(), Value::int_orset([2, 3]));
        assert_eq!(eval(&or_difference(), &v).unwrap(), Value::int_orset([1]));
        assert_eq!(eval(&or_subset(), &v).unwrap(), Value::Bool(false));
    }

    #[test]
    fn or_cartesian_pair_combines_alternatives() {
        let v = Value::pair(Value::int_orset([1, 2]), Value::int_orset([3, 4]));
        let out = eval(&or_cartesian_pair(), &v).unwrap();
        assert_eq!(out.elements().unwrap().len(), 4);
    }

    #[test]
    fn powerset_via_alpha_matches_native_powerset() {
        for n in 0..=5i64 {
            let input = Value::int_set(0..n);
            let via_alpha = eval(&powerset_via_alpha(), &input).unwrap();
            let native = eval(&M::Powerset, &input).unwrap();
            assert_eq!(via_alpha, native, "powerset of {input}");
        }
    }

    #[test]
    fn powerset_via_alpha_type_checks() {
        let t = output_type(&powerset_via_alpha(), &Type::set(Type::Int)).unwrap();
        assert_eq!(t, Type::set(Type::set(Type::Int)));
    }

    #[test]
    fn paper_proof_sketch_of_alpha_from_powerset_overapproximates() {
        // The reproduction finding documented above: for the family
        // <1,2>, <3,5>, <3,6> the set {1,2,3} has cardinality 3 (= number of
        // or-sets) and intersects every or-set, yet it is not produced by α.
        let family = Value::set([
            Value::int_orset([1, 2]),
            Value::int_orset([3, 5]),
            Value::int_orset([3, 6]),
        ]);
        let candidate = Value::int_set([1, 2, 3]);
        // candidate passes the sketch's two tests
        assert!(candidate.elements().unwrap().len() <= family.elements().unwrap().len());
        for orset in family.elements().unwrap() {
            let hit = orset
                .elements()
                .unwrap()
                .iter()
                .any(|x| candidate.elements().unwrap().contains(x));
            assert!(hit);
        }
        // ... but α never produces it
        let native = eval(&M::Alpha, &family).unwrap();
        assert!(!native.elements().unwrap().contains(&candidate));
    }

    #[test]
    fn derived_operators_type_check() {
        let int_set = Type::set(Type::Int);
        let pair_of = Type::prod(int_set.clone(), int_set.clone());
        assert_eq!(
            output_type(&member(), &Type::prod(Type::Int, int_set.clone())).unwrap(),
            Type::Bool
        );
        assert_eq!(output_type(&subset(), &pair_of).unwrap(), Type::Bool);
        assert_eq!(
            output_type(&intersect(), &pair_of).unwrap(),
            int_set.clone()
        );
        assert_eq!(
            output_type(&difference(), &pair_of).unwrap(),
            int_set.clone()
        );
        assert_eq!(
            output_type(&cartesian_product(), &pair_of).unwrap(),
            Type::set(Type::prod(Type::Int, Type::Int))
        );
        let or_int = Type::orset(Type::Int);
        assert_eq!(
            output_type(&or_member(), &Type::prod(Type::Int, or_int.clone())).unwrap(),
            Type::Bool
        );
        assert_eq!(
            output_type(&or_intersect(), &Type::prod(or_int.clone(), or_int.clone())).unwrap(),
            or_int
        );
    }
}
