//! Losslessness of normalization (Section 5): the `preserve(f)` construction.
//!
//! Normalization erases structural distinctions between conceptually
//! equivalent objects, so one may worry that it loses information needed by
//! later queries.  Theorem 5.1 shows that for a large syntactic class of
//! morphisms `f : s → t` there is a morphism
//! `preserve(f) : nf(<s>) → nf(<t>)` with
//!
//! ```text
//! preserve(f) ∘ normalize ∘ orη  =  normalize ∘ orη ∘ f
//! ```
//!
//! on inputs free of empty or-sets — i.e. one can normalize *first* and still
//! compute the conceptual result of `f`.  Proposition 5.2 relaxes the
//! preconditions and obtains a *conceptual analog*: the left-hand side is
//! then only *included* in the right-hand side (Figure 2).
//!
//! This module implements the structural-induction construction of
//! `preserve(f)`, the syntactic precondition checker of Theorem 5.1, and
//! executable checks of both the equational (lossless) and the inclusion
//! (conceptual analog) properties.

use or_object::{Type, Value};

use crate::derived::or_rho1;
use crate::error::{EvalError, TypeError};
use crate::eval::eval;
use crate::infer::output_type;
use crate::morphism::Morphism as M;

/// The "or-cartesian-pair" used in the pair-formation case of Theorem 5.1:
/// `orcp = or_mu ∘ ormap(or_rho1) ∘ or_rho2 : <s> × <t> → <s × t>`.
fn orcp() -> M {
    M::OrRho2.then(M::ormap(or_rho1())).then(M::OrMu)
}

/// Build `preserve(f)` by structural induction on `f`, following the proof of
/// Theorem 5.1 (and the `K<>` case of Proposition 5.2).
///
/// The construction is purely syntactic; whether the result actually makes
/// normalization lossless depends on the preconditions, which
/// [`lossless_preconditions`] checks separately.
pub fn preserve(f: &M) -> M {
    match f {
        M::Id => M::Id,
        // "Case f is η, π1, π2, μ, K{}, Kc, !, ∪, ρ2, or p" — map over the
        // possibilities
        M::Eta
        | M::Proj1
        | M::Proj2
        | M::Mu
        | M::KEmptySet
        | M::Const(_)
        | M::Bang
        | M::Union
        | M::Rho2
        | M::Eq
        | M::Prim(_)
        | M::Cond(..)
        | M::Powerset => M::ormap(f.clone()),
        // pair formation
        M::PairWith(g, h) => M::pair(preserve(g), preserve(h)).then(orcp()),
        // composition
        M::Compose(g, h) => M::compose(preserve(g), preserve(h)),
        // map
        M::Map(g) => M::ormap(M::map(M::OrEta.then(preserve(g))))
            .then(M::ormap(M::Alpha))
            .then(M::OrMu),
        // operators that normalization absorbs
        M::Alpha | M::OrEta | M::OrRho2 | M::OrMu => M::Id,
        // or-union
        M::OrUnion => {
            M::ormap(M::pair(M::Proj1.then(M::OrEta), M::Proj2.then(M::OrEta)).then(M::OrUnion))
                .then(M::OrMu)
        }
        // ormap
        M::OrMap(g) => preserve(g),
        // K<> (Proposition 5.2's extra case): everything becomes inconsistent
        M::KEmptyOrSet => M::ormap(M::KEmptyOrSet.after_bang()).then(M::OrMu),
        // conversions and normalize are outside the theorem; map over them so
        // that the function is total, but the precondition checker flags them
        M::OrToSet | M::SetToOr | M::Normalize => M::ormap(f.clone()),
    }
}

/// A violation of the preconditions of Theorem 5.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreconditionViolation {
    /// The offending sub-morphism.
    pub morphism: String,
    /// Why it violates the preconditions.
    pub reason: String,
}

/// Check the syntactic preconditions of Theorem 5.1 for `f` applied at the
/// concrete input type `input`:
///
/// * no `K<>`;
/// * no primitive (including `eq` and `cond`) whose type mentions or-sets;
/// * no `ρ₂`, `μ`, or `∪` at element types with or-sets;
/// * no `map(g) : {u} → {v}` with or-sets in `u` or `v`;
/// * no pair formation `⟨g, h⟩ : r → u × v` with or-sets in `r`, `u`, or `v`.
///
/// Returns the list of violations (empty when normalization is lossless with
/// respect to `f` by Theorem 5.1) together with the output type.
pub fn lossless_preconditions(
    f: &M,
    input: &Type,
) -> Result<(Type, Vec<PreconditionViolation>), TypeError> {
    let mut violations = Vec::new();
    let out = walk(f, input, &mut violations)?;
    Ok((out, violations))
}

fn violation(list: &mut Vec<PreconditionViolation>, m: &M, reason: impl Into<String>) {
    list.push(PreconditionViolation {
        morphism: m.to_string(),
        reason: reason.into(),
    });
}

fn walk(
    f: &M,
    input: &Type,
    violations: &mut Vec<PreconditionViolation>,
) -> Result<Type, TypeError> {
    let out = output_type(f, input)?;
    match f {
        M::KEmptyOrSet => violation(violations, f, "K<> is excluded by Theorem 5.1"),
        M::OrToSet | M::SetToOr | M::Powerset | M::Normalize => violation(
            violations,
            f,
            "operator outside the or-NRA fragment covered by Theorem 5.1",
        ),
        M::Eq | M::Prim(_) if (input.contains_orset() || out.contains_orset()) => {
            violation(
                violations,
                f,
                "primitive whose type mentions or-sets (structural equality at or-set \
                     types is not preserved by normalization)",
            );
        }
        M::Cond(p, g, h) => {
            if input.contains_orset() || out.contains_orset() {
                violation(violations, f, "cond at a type with or-sets");
            }
            walk(p, input, violations)?;
            walk(g, input, violations)?;
            walk(h, input, violations)?;
        }
        M::Rho2 | M::Mu | M::Union if input.contains_orset() => {
            violation(
                violations,
                f,
                "set operator applied at a type with or-sets (it can collapse or-sets)",
            );
        }
        M::Map(g) => {
            let elem = match input {
                Type::Set(t) => (**t).clone(),
                other => {
                    return Err(TypeError::Shape {
                        message: format!("map applied to non-set type {other}"),
                    })
                }
            };
            let elem_out = walk(g, &elem, violations)?;
            if elem.contains_orset() || elem_out.contains_orset() {
                violation(
                    violations,
                    f,
                    "map between element types with or-sets (it can collapse or-sets)",
                );
            }
        }
        M::PairWith(g, h) => {
            let a = walk(g, input, violations)?;
            let b = walk(h, input, violations)?;
            if input.contains_orset() || a.contains_orset() || b.contains_orset() {
                violation(
                    violations,
                    f,
                    "pair formation at types with or-sets (Theorem 5.1 precondition)",
                );
            }
        }
        M::Compose(g, h) => {
            let mid = walk(h, input, violations)?;
            walk(g, &mid, violations)?;
        }
        M::OrMap(g) => {
            let elem = match input {
                Type::OrSet(t) => (**t).clone(),
                other => {
                    return Err(TypeError::Shape {
                        message: format!("ormap applied to non-or-set type {other}"),
                    })
                }
            };
            walk(g, &elem, violations)?;
        }
        _ => {}
    }
    Ok(out)
}

/// Does `f` **commute with α-expansion** when applied to rows of type
/// `input`?  True exactly when the syntactic preconditions of Theorem 5.1
/// hold for `f` at `input` (and `f` typechecks there at all).
///
/// This is the test the expand planner
/// ([`crate::optimize::optimize_expansion`]) uses to push a filter or
/// projection below an `OrExpand` operator.  The connection: for `f` within
/// the preconditions, Theorem 5.1 gives
///
/// ```text
/// normalize ∘ orη ∘ f  =  preserve(f) ∘ normalize ∘ orη
/// ```
///
/// and `preserve(f)` is map-like, so the set of complete worlds of `f(row)`
/// equals `f` applied pointwise to the complete worlds of `row` — i.e. one
/// may evaluate `f` *before* expanding instead of once per expanded world.
/// A predicate that inspects or-set structure (e.g. `=` at an or-set type)
/// fails the preconditions and is reported as non-commuting, as is any `f`
/// that does not typecheck against the **unexpanded** row type.
///
/// Note the theorem's proviso: the equation is stated for inputs free of
/// empty or-sets.  For *filters* the rewrite is sound even without the
/// proviso (an inconsistent row expands to no worlds on either side); for
/// *projections* that drop components the caller must separately know the
/// rows are consistent — see the expand planner's documentation.
pub fn commutes_with_or_alpha(f: &M, input: &Type) -> bool {
    matches!(lossless_preconditions(f, input), Ok((_, v)) if v.is_empty())
}

/// Evaluate both sides of the losslessness equation for a concrete input
/// object `x : s`:
///
/// * left: `preserve(f)(normalize(orη(x)))`
/// * right: `normalize(orη(f(x)))`
///
/// Returns `(left, right)`.
pub fn losslessness_sides(f: &M, x: &Value) -> Result<(Value, Value), EvalError> {
    let pf = preserve(f);
    let lhs_input = eval(&M::OrEta.then(M::Normalize), x)?;
    let left = eval(&pf, &lhs_input)?;
    let right = eval(
        &M::compose(M::Normalize, M::compose(M::OrEta, f.clone())),
        x,
    )?;
    Ok((left, right))
}

/// Does the losslessness equation hold for `f` on input `x` (Theorem 5.1)?
pub fn is_lossless_on(f: &M, x: &Value) -> Result<bool, EvalError> {
    let (left, right) = losslessness_sides(f, x)?;
    Ok(left == right)
}

/// Is `preserve(f)` a *conceptual analog* of `f` on input `x`
/// (Proposition 5.2 / Figure 2)?  That is, is every conceptual value produced
/// by the left-hand side also produced by the right-hand side?
pub fn is_conceptual_analog_on(f: &M, x: &Value) -> Result<bool, EvalError> {
    let (left, right) = losslessness_sides(f, x)?;
    match (&left, &right) {
        (Value::OrSet(l), Value::OrSet(r)) => Ok(l.iter().all(|v| r.contains(v))),
        _ => Ok(left == right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derived;
    use crate::morphism::Prim;

    #[test]
    fn preserve_of_projection_is_lossless() {
        // f = π1 : <int> × {int} → <int>
        let f = M::Proj1;
        let x = Value::pair(Value::int_orset([1, 2]), Value::int_set([5, 6]));
        assert!(is_lossless_on(&f, &x).unwrap());
    }

    #[test]
    fn preserve_of_ormap_is_lossless() {
        // f = ormap(plus) : <int × int> → <int>
        let f = M::ormap(M::Prim(Prim::Plus));
        let x = Value::orset([
            Value::pair(Value::Int(1), Value::Int(2)),
            Value::pair(Value::Int(3), Value::Int(4)),
        ]);
        assert!(is_lossless_on(&f, &x).unwrap());
    }

    #[test]
    fn preserve_of_or_union_is_lossless() {
        let f = M::OrUnion;
        let x = Value::pair(Value::int_orset([1, 2]), Value::int_orset([3]));
        assert!(is_lossless_on(&f, &x).unwrap());
    }

    #[test]
    fn preserve_of_or_mu_and_alpha_are_identity_and_lossless() {
        let x = Value::orset([Value::int_orset([1, 2]), Value::int_orset([3])]);
        assert!(is_lossless_on(&M::OrMu, &x).unwrap());
        let y = Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]);
        assert!(is_lossless_on(&M::Alpha, &y).unwrap());
        assert_eq!(preserve(&M::Alpha), M::Id);
        assert_eq!(preserve(&M::OrMu), M::Id);
    }

    #[test]
    fn preserve_of_composition_is_lossless() {
        // f = ormap(π2) ∘ or_rho2 : int × <int> → <int>
        let f = M::OrRho2.then(M::ormap(M::Proj2));
        let x = Value::pair(Value::Int(9), Value::int_orset([1, 2, 3]));
        assert!(is_lossless_on(&f, &x).unwrap());
    }

    #[test]
    fn preserve_of_map_without_orsets_is_lossless() {
        // f = map(plus) : {int × int} → {int}, element types or-free
        let f = M::map(M::Prim(Prim::Plus));
        let x = Value::set([
            Value::pair(Value::Int(1), Value::Int(2)),
            Value::pair(Value::Int(3), Value::Int(4)),
        ]);
        assert!(is_lossless_on(&f, &x).unwrap());
        // and the preconditions hold
        let input_ty = Type::set(Type::prod(Type::Int, Type::Int));
        let (_, violations) = lossless_preconditions(&f, &input_ty).unwrap();
        assert!(violations.is_empty());
    }

    #[test]
    fn preconditions_flag_equality_at_orset_types() {
        let f = M::Eq;
        let t = Type::prod(Type::orset(Type::Int), Type::orset(Type::Int));
        let (_, violations) = lossless_preconditions(&f, &t).unwrap();
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn preconditions_flag_union_that_can_collapse_orsets() {
        let f = M::Union;
        let t = Type::prod(
            Type::set(Type::orset(Type::Int)),
            Type::set(Type::orset(Type::Int)),
        );
        let (_, violations) = lossless_preconditions(&f, &t).unwrap();
        assert!(!violations.is_empty());
    }

    #[test]
    fn equality_at_orset_type_is_genuinely_not_lossless() {
        // The documented counterexample class: =_t at an or-set type is a
        // structural test, and normalization erases exactly the structure it
        // looks at.  <1,2> and <2,1> are structurally equal, but <<1,2>> and
        // <<1>,<2>> normalize to the same or-set while being structurally
        // different, so eq gives different answers before and after.
        let f = M::Eq;
        let x = Value::pair(
            Value::orset([Value::int_orset([1, 2])]),
            Value::orset([Value::int_orset([1]), Value::int_orset([2])]),
        );
        // structural equality on the original: false; after normalization
        // both components denote the same alternatives.
        let (left, right) = losslessness_sides(&f, &x).unwrap();
        assert_ne!(left, right);
    }

    #[test]
    fn or_rho2_is_an_example_where_the_analog_is_not_onto() {
        // Proposition 5.2's ρ₂ example, transposed to our combinators:
        // f = ρ₂ : <int> × {int} → {<int> × int} is outside Theorem 5.1 (the
        // pairing/ρ₂ restriction), and indeed the conceptual analog only
        // covers part of the right-hand side.
        let f = M::Rho2;
        let x = Value::pair(Value::int_orset([1, 2]), Value::int_set([3, 4]));
        assert!(is_conceptual_analog_on(&f, &x).unwrap());
        let (left, right) = losslessness_sides(&f, &x).unwrap();
        // not onto: the right-hand side has strictly more possibilities
        assert!(left.elements().unwrap().len() < right.elements().unwrap().len());
    }

    #[test]
    fn or_select_is_outside_the_theorem_and_the_checker_says_so() {
        // or_select(cheap) uses K<> and a cond whose result type has or-sets,
        // both excluded by Theorem 5.1 (and Proposition 5.2).  The syntactic
        // checker flags them, and indeed the blindly-applied construction is
        // not even a conceptual analog here — a negative test showing the
        // preconditions are not vacuous.
        let cheap = M::pair(M::Id, M::constant(Value::Int(100))).then(M::Prim(Prim::Leq));
        let f = derived::or_select(cheap);
        let x = Value::int_orset([50, 150, 99]);
        assert!(!is_conceptual_analog_on(&f, &x).unwrap());
        let (_, violations) = lossless_preconditions(&f, &Type::orset(Type::Int)).unwrap();
        assert!(violations.iter().any(|v| v.morphism.contains("K<>")));
        assert!(violations.iter().any(|v| v.reason.contains("cond")));
    }

    #[test]
    fn preserve_is_map_like_for_primitive_cases() {
        // preserve(f) = or_mu ∘ ormap(preserve(f) ∘ orη) — the "map-like"
        // property stated in Theorem 5.1, checked extensionally on samples.
        let f = M::Proj1;
        let pf = preserve(&f);
        let map_like = M::ormap(M::OrEta.then(pf.clone())).then(M::OrMu);
        let inputs = [
            Value::orset([
                Value::pair(Value::Int(1), Value::Int(2)),
                Value::pair(Value::Int(3), Value::Int(4)),
            ]),
            Value::orset([Value::pair(Value::Int(7), Value::Int(8))]),
        ];
        for x in &inputs {
            assert_eq!(eval(&pf, x).unwrap(), eval(&map_like, x).unwrap());
        }
    }
}
