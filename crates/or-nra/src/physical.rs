//! Physical query plans: the IR between the or-NRA⁺ algebra and the
//! streaming execution engine (`or-engine`).
//!
//! A [`PhysicalPlan`] describes a **row pipeline**: its input is a finite set
//! of rows (a relation in its complex-object representation `{t}`), and every
//! operator transforms a stream of rows into a stream of rows.  This is the
//! classical "physical algebra" layer of a database engine — the conceptual
//! or-NRA⁺ morphism says *what* to compute, the plan says *how* the rows
//! flow:
//!
//! | operator       | morphism analogue                           | streaming? |
//! |----------------|---------------------------------------------|------------|
//! | `Scan`         | `id : {t} → {t}`                            | yes        |
//! | `Project`      | `map(f)`                                    | yes        |
//! | `Filter`       | `μ ∘ map(cond(p, η, K{} ∘ !))` (= `select`) | yes        |
//! | `AttachEnv`    | `ρ₂ ∘ ⟨e, id⟩`                              | yes (e once) |
//! | `Cartesian`    | `μ ∘ map(ρ₂) ∘ ρ₁` on a pair of scans       | right side materialized |
//! | `Join`         | `select(p)` over a `Cartesian`              | right side materialized |
//! | `Union`        | `∪ ∘ ⟨f, g⟩`                                | left streams, right broadcast |
//! | `Flatten`      | `μ : {{t}} → {t}`                           | yes        |
//! | `OrExpand`     | `μ ∘ map(ortoset ∘ normalize)`              | yes, per-row lazy |
//!
//! `OrExpand` is where the conceptual level meets physical reality: each row
//! is α-expanded into its complete (or-set-free) instances **lazily**, one
//! denotation at a time, with optional deduplication and a per-row **budget**
//! that turns the paper's exponential normal-form bounds (Section 6) into an
//! enforced resource limit instead of an accidental OOM.
//!
//! Plans are produced either directly through the builder methods
//! ([`PhysicalPlan::scan`], [`PhysicalPlan::filter`], …) or from a morphism
//! by [`crate::optimize::lower`], which recognizes the set-pipeline fragment
//! of or-NRA⁺ (including the shapes the OrQL comprehension compiler emits).
//! Execution lives in the `or-engine` crate.

use std::fmt;

use crate::morphism::Morphism;

/// A physical query plan over row streams.
///
/// `Scan(i)` reads input slot `i` of the executor; all other nodes transform
/// the rows produced by their children.  The derived `PartialEq`/`Eq` make
/// plans testable; [`fmt::Display`] renders an `EXPLAIN`-style tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysicalPlan {
    /// Read every row of input slot `i`.
    Scan(usize),
    /// Keep the rows on which `predicate` evaluates to `true`.
    Filter {
        /// The row-level predicate (`row → bool`).
        predicate: Morphism,
        /// Upstream plan.
        input: Box<PhysicalPlan>,
    },
    /// Apply `f` to every row.
    Project {
        /// The row-level transformer (`row → row'`).
        f: Morphism,
        /// Upstream plan.
        input: Box<PhysicalPlan>,
    },
    /// Evaluate `setup` **once** against the materialized input set; the
    /// result must be a pair `(env, {rows})`, and the operator then streams
    /// `(env, row)` pairs.  This is how the OrQL comprehension translation's
    /// environment tuples (`ρ₂ ∘ ⟨e, id⟩` prefixes) are carried through a row
    /// pipeline: `e` runs once, not per row.
    AttachEnv {
        /// Morphism from the whole input set to the `(env, {rows})` pair.
        setup: Morphism,
        /// Upstream plan.
        input: Box<PhysicalPlan>,
    },
    /// All pairs of left and right rows (right side is materialized).
    Cartesian {
        /// Left (streamed, partitionable) side.
        left: Box<PhysicalPlan>,
        /// Right (materialized, broadcast) side.
        right: Box<PhysicalPlan>,
    },
    /// Pairs of left and right rows satisfying `predicate`
    /// (`(l, r) → bool`).  A nested-loop join with the right side
    /// materialized; equality predicates additionally take a hash fast path
    /// in the engine.
    Join {
        /// The join predicate over `(left_row, right_row)` pairs.
        predicate: Morphism,
        /// Left (streamed, partitionable) side.
        left: Box<PhysicalPlan>,
        /// Right (materialized, broadcast) side.
        right: Box<PhysicalPlan>,
    },
    /// Set union of two row streams.  The left side streams (and is
    /// partitionable); the right side is streamed whole by one worker — the
    /// executor's canonical merge (sort + dedup) makes the concatenation an
    /// exact set union.
    Union {
        /// Left (streamed, partitionable) side.
        left: Box<PhysicalPlan>,
        /// Right (broadcast) side.
        right: Box<PhysicalPlan>,
    },
    /// Flatten one level of nesting: every input row must itself be a set,
    /// and its elements are streamed (`μ : {{t}} → {t}` applied row-wise).
    /// This is how multi-generator comprehensions whose inner generator
    /// depends on the outer row (`{ x | xs <- db, x <- xs }`) reach the
    /// engine: the dependent generator projects each row to a set, and
    /// `Flatten` streams the elements.
    Flatten {
        /// Upstream plan (rows of type `{t}`).
        input: Box<PhysicalPlan>,
    },
    /// Expand each row into its complete (or-set-free) instances, lazily.
    OrExpand {
        /// Per-row cap on the number of produced denotations; exceeding it is
        /// a reported resource-limit error, never an OOM.  `None` = unbounded.
        budget: Option<u64>,
        /// Deduplicate expanded rows incrementally while streaming.
        dedup: bool,
        /// Upstream plan.
        input: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// Leaf: scan input slot `i`.
    pub fn scan(i: usize) -> PhysicalPlan {
        PhysicalPlan::Scan(i)
    }

    /// Filter this plan's rows by `predicate`.
    pub fn filter(self, predicate: Morphism) -> PhysicalPlan {
        PhysicalPlan::Filter {
            predicate,
            input: Box::new(self),
        }
    }

    /// Map `f` over this plan's rows.
    pub fn project(self, f: Morphism) -> PhysicalPlan {
        PhysicalPlan::Project {
            f,
            input: Box::new(self),
        }
    }

    /// Attach an environment computed once from the driving input set
    /// (`setup : {t} → env × {t'}`).
    pub fn attach_env(self, setup: Morphism) -> PhysicalPlan {
        PhysicalPlan::AttachEnv {
            setup,
            input: Box::new(self),
        }
    }

    /// Cartesian product with `right`.
    pub fn cartesian(self, right: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::Cartesian {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Join with `right` on `predicate`.
    pub fn join(self, right: PhysicalPlan, predicate: Morphism) -> PhysicalPlan {
        PhysicalPlan::Join {
            predicate,
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Set union with `right`.
    pub fn union_with(self, right: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Flatten one level of set nesting (rows must be sets; their elements
    /// are streamed).
    pub fn flatten(self) -> PhysicalPlan {
        PhysicalPlan::Flatten {
            input: Box::new(self),
        }
    }

    /// Or-expand each row into its complete instances (unbounded, deduped).
    pub fn or_expand(self) -> PhysicalPlan {
        PhysicalPlan::OrExpand {
            budget: None,
            dedup: true,
            input: Box::new(self),
        }
    }

    /// Or-expand with a per-row denotation budget.
    pub fn or_expand_budgeted(self, budget: u64) -> PhysicalPlan {
        PhysicalPlan::OrExpand {
            budget: Some(budget),
            dedup: true,
            input: Box::new(self),
        }
    }

    /// The highest input slot referenced, plus one (0 for a plan with no
    /// scans, which cannot happen through the public constructors).
    pub fn input_arity(&self) -> usize {
        match self {
            PhysicalPlan::Scan(i) => i + 1,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::AttachEnv { input, .. }
            | PhysicalPlan::Flatten { input }
            | PhysicalPlan::OrExpand { input, .. } => input.input_arity(),
            PhysicalPlan::Cartesian { left, right } | PhysicalPlan::Union { left, right } => {
                left.input_arity().max(right.input_arity())
            }
            PhysicalPlan::Join { left, right, .. } => left.input_arity().max(right.input_arity()),
        }
    }

    /// The input slot of the **driving scan**: the leaf reached by following
    /// `input`/`left` children.  The parallel executor partitions this slot's
    /// rows across workers; every other scan is broadcast whole.
    pub fn driving_scan(&self) -> usize {
        match self {
            PhysicalPlan::Scan(i) => *i,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::AttachEnv { input, .. }
            | PhysicalPlan::Flatten { input }
            | PhysicalPlan::OrExpand { input, .. } => input.driving_scan(),
            PhysicalPlan::Cartesian { left, .. }
            | PhysicalPlan::Join { left, .. }
            | PhysicalPlan::Union { left, .. } => left.driving_scan(),
        }
    }

    /// Number of operators in the plan.
    pub fn operator_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan(_) => 1,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::AttachEnv { input, .. }
            | PhysicalPlan::Flatten { input }
            | PhysicalPlan::OrExpand { input, .. } => 1 + input.operator_count(),
            PhysicalPlan::Cartesian { left, right } | PhysicalPlan::Union { left, right } => {
                1 + left.operator_count() + right.operator_count()
            }
            PhysicalPlan::Join { left, right, .. } => {
                1 + left.operator_count() + right.operator_count()
            }
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::Scan(i) => writeln!(f, "{pad}Scan(#{i})"),
            PhysicalPlan::Filter { predicate, input } => {
                writeln!(f, "{pad}Filter[{predicate}]")?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::Project { f: m, input } => {
                writeln!(f, "{pad}Project[{m}]")?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::AttachEnv { setup, input } => {
                writeln!(f, "{pad}AttachEnv[{setup}]")?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::Cartesian { left, right } => {
                writeln!(f, "{pad}Cartesian")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::Union { left, right } => {
                writeln!(f, "{pad}Union")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::Flatten { input } => {
                writeln!(f, "{pad}Flatten")?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::Join {
                predicate,
                left,
                right,
            } => {
                writeln!(f, "{pad}Join[{predicate}]")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::OrExpand {
                budget,
                dedup,
                input,
            } => {
                match budget {
                    Some(b) => writeln!(f, "{pad}OrExpand[budget={b}, dedup={dedup}]")?,
                    None => writeln!(f, "{pad}OrExpand[dedup={dedup}]")?,
                }
                input.fmt_indented(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// Why a morphism could not be lowered to a physical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// The morphism fragment that stopped the lowering.
    pub unsupported: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "morphism is outside the lowerable set-pipeline fragment: {}",
            self.unsupported
        )
    }
}

impl std::error::Error for LowerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morphism::Morphism as M;

    #[test]
    fn builders_compose_and_report_shape() {
        let plan = PhysicalPlan::scan(0)
            .filter(M::Eq)
            .project(M::Proj1)
            .join(PhysicalPlan::scan(1), M::Eq)
            .or_expand_budgeted(64);
        assert_eq!(plan.input_arity(), 2);
        assert_eq!(plan.driving_scan(), 0);
        assert_eq!(plan.operator_count(), 6);
        let rendered = plan.to_string();
        assert!(rendered.contains("OrExpand[budget=64"));
        assert!(rendered.contains("Scan(#1)"));
    }

    #[test]
    fn union_and_flatten_report_shape() {
        let plan = PhysicalPlan::scan(0)
            .flatten()
            .union_with(PhysicalPlan::scan(1).project(M::Proj2));
        assert_eq!(plan.input_arity(), 2);
        // the driving scan follows the left (streamed) side
        assert_eq!(plan.driving_scan(), 0);
        assert_eq!(plan.operator_count(), 5);
        let rendered = plan.to_string();
        assert!(rendered.contains("Union"), "plan: {rendered}");
        assert!(rendered.contains("Flatten"), "plan: {rendered}");
    }
}
