//! The morphisms (expressions) of or-NRA and or-NRA⁺ — Figure 1 of the paper.
//!
//! or-NRA is the union of a nested relational algebra `NRA` (the set monad
//! operators of Buneman–Naqvi–Tannen–Wong), its or-set analogue `NRA_or`, and
//! the interaction operator `alpha : {<s>} -> <{s}>`.  or-NRA⁺ adds the
//! single primitive `normalize : t -> nf(t)` (Section 4).
//!
//! Composition is written [`Morphism::Compose`]`(f, g)` and means `f ∘ g`
//! ("g first, then f"), matching the paper's notation `f ∘ g`.  The
//! [`Morphism::then`] combinator builds left-to-right pipelines.

use std::fmt;

use or_object::Value;

/// Interpreted primitive functions (the paper's parameter `Σ` of additional
/// primitives such as integer operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// Integer addition `int × int → int`.
    Plus,
    /// Integer subtraction `int × int → int`.
    Minus,
    /// Integer multiplication `int × int → int`.
    Times,
    /// Integer comparison `int × int → bool` (less-or-equal).
    Leq,
    /// Integer comparison `int × int → bool` (strictly less).
    Lt,
    /// Boolean negation `bool → bool`.
    Not,
    /// Boolean conjunction `bool × bool → bool`.
    And,
    /// Boolean disjunction `bool × bool → bool`.
    Or,
    /// The canonical linear order on every object type, `s × s → bool`.
    /// This is the "lifting of linear orders from base types to arbitrary
    /// types" provided by the OR-SML library (Section 7, citing \[26\]); here
    /// it is the order of the canonical value representation.
    ValueLeq,
}

impl Prim {
    /// The printable name of the primitive.
    pub fn name(self) -> &'static str {
        match self {
            Prim::Plus => "plus",
            Prim::Minus => "minus",
            Prim::Times => "times",
            Prim::Leq => "leq",
            Prim::Lt => "lt",
            Prim::Not => "not",
            Prim::And => "and",
            Prim::Or => "or",
            Prim::ValueLeq => "value_leq",
        }
    }
}

/// A morphism (expression) of or-NRA⁺.
///
/// The constructors follow Figure 1; names of the set-monad operators use the
/// conventional Greek letters spelled out (`Eta` for `η`, `Mu` for `μ`,
/// `Rho2` for `ρ₂`), and the or-set analogues carry an `Or` prefix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Morphism {
    // ---- general category / product structure ----
    /// Identity `id : s → s`.
    Id,
    /// Composition `f ∘ g : s → u` for `g : s → t`, `f : t → u`.
    Compose(Box<Morphism>, Box<Morphism>),
    /// First projection `π₁ : s × t → s`.
    Proj1,
    /// Second projection `π₂ : s × t → t`.
    Proj2,
    /// Pair formation `⟨f, g⟩ : s → t × u`.
    PairWith(Box<Morphism>, Box<Morphism>),
    /// The unique map into `unit`, `! : s → unit`.
    Bang,
    /// Constant morphism `Kc : unit → b` for a constant `c`.  (For
    /// convenience any complex-object constant is allowed; the losslessness
    /// precondition checker restricts attention to or-set-free constants.)
    Const(Value),
    /// Equality test `=ₛ : s × s → bool` (structural equality of canonical
    /// values, i.e. equality at the structural level of the paper).
    Eq,
    /// Conditional `cond(p, f, g) : s → t`: apply `f` if `p` holds, else `g`.
    Cond(Box<Morphism>, Box<Morphism>, Box<Morphism>),
    /// An interpreted primitive.
    Prim(Prim),

    // ---- the set monad (NRA) ----
    /// Singleton formation `η : s → {s}`.
    Eta,
    /// Flattening `μ : {{s}} → {s}`.
    Mu,
    /// Map `map(f) : {s} → {t}` for `f : s → t`.
    Map(Box<Morphism>),
    /// Pairing with a set `ρ₂ : s × {t} → {s × t}`.
    Rho2,
    /// Union `∪ : {s} × {s} → {s}`.
    Union,
    /// The empty set `K{} : unit → {s}`.
    KEmptySet,

    // ---- the or-set monad (NRA_or) ----
    /// Or-singleton `orη : s → <s>`.
    OrEta,
    /// Or-flattening `orμ : <<s>> → <s>`.
    OrMu,
    /// Or-map `ormap(f) : <s> → <t>` for `f : s → t`.
    OrMap(Box<Morphism>),
    /// Pairing with an or-set `orρ₂ : s × <t> → <s × t>`.
    OrRho2,
    /// Or-union `or∪ : <s> × <s> → <s>`.
    OrUnion,
    /// The empty or-set `K<> : unit → <s>`.
    KEmptyOrSet,

    // ---- interaction and conversions ----
    /// `α : {<s>} → <{s}>` — combine a set of or-sets in all possible ways.
    Alpha,
    /// `ortoset : <s> → {s}` (technical conversion used in Proposition 2.1).
    OrToSet,
    /// `settoor : {s} → <s>` (technical conversion used in Proposition 2.1).
    SetToOr,
    /// `powerset : {s} → {{s}}` — the Abiteboul–Beeri primitive, provided
    /// natively as the comparison baseline for Proposition 2.1 / experiment
    /// E1.  It is *not* part of or-NRA proper.
    Powerset,

    // ---- the conceptual level (or-NRA⁺) ----
    /// `normalize : t → nf(t)` — the single primitive added in Section 4.
    Normalize,
}

impl Morphism {
    /// Composition in application order: `f.then(g)` applies `f` first and
    /// then `g` (i.e. it builds `g ∘ f`).
    pub fn then(self, g: Morphism) -> Morphism {
        Morphism::Compose(Box::new(g), Box::new(self))
    }

    /// Composition in the paper's order: `compose(f, g)` is `f ∘ g`.
    pub fn compose(f: Morphism, g: Morphism) -> Morphism {
        Morphism::Compose(Box::new(f), Box::new(g))
    }

    /// Pair formation `⟨f, g⟩`.
    pub fn pair(f: Morphism, g: Morphism) -> Morphism {
        Morphism::PairWith(Box::new(f), Box::new(g))
    }

    /// Map over a set.
    pub fn map(f: Morphism) -> Morphism {
        Morphism::Map(Box::new(f))
    }

    /// Map over an or-set.
    pub fn ormap(f: Morphism) -> Morphism {
        Morphism::OrMap(Box::new(f))
    }

    /// Conditional.
    pub fn cond(p: Morphism, then_branch: Morphism, else_branch: Morphism) -> Morphism {
        Morphism::Cond(Box::new(p), Box::new(then_branch), Box::new(else_branch))
    }

    /// The constant morphism producing `c` regardless of input (`Kc ∘ !`).
    pub fn constant(c: Value) -> Morphism {
        Morphism::Const(c).after_bang()
    }

    /// Precompose with `!` so that a `unit`-domain morphism accepts any
    /// input.
    pub fn after_bang(self) -> Morphism {
        Morphism::compose(self, Morphism::Bang)
    }

    /// Number of constructors in the expression tree (used as a cost proxy by
    /// the optimizer and in statistics).
    pub fn size(&self) -> usize {
        match self {
            Morphism::Compose(f, g) => 1 + f.size() + g.size(),
            Morphism::PairWith(f, g) => 1 + f.size() + g.size(),
            Morphism::Cond(p, f, g) => 1 + p.size() + f.size() + g.size(),
            Morphism::Map(f) | Morphism::OrMap(f) => 1 + f.size(),
            _ => 1,
        }
    }

    /// Does the expression contain the `normalize` primitive (i.e. is it an
    /// or-NRA⁺ morphism rather than an or-NRA one)?
    pub fn uses_normalize(&self) -> bool {
        self.any_node(&mut |m| matches!(m, Morphism::Normalize))
    }

    /// Does the expression contain the empty-or-set constant `K<>`?
    /// (Relevant for the losslessness theorem's preconditions.)
    pub fn uses_empty_orset(&self) -> bool {
        self.any_node(&mut |m| matches!(m, Morphism::KEmptyOrSet))
    }

    /// Does the expression contain the native `powerset` baseline primitive?
    pub fn uses_powerset(&self) -> bool {
        self.any_node(&mut |m| matches!(m, Morphism::Powerset))
    }

    /// Apply `pred` to every node of the expression tree, returning whether
    /// any node satisfies it.
    pub fn any_node(&self, pred: &mut impl FnMut(&Morphism) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        match self {
            Morphism::Compose(f, g) | Morphism::PairWith(f, g) => {
                f.any_node(pred) || g.any_node(pred)
            }
            Morphism::Cond(p, f, g) => p.any_node(pred) || f.any_node(pred) || g.any_node(pred),
            Morphism::Map(f) | Morphism::OrMap(f) => f.any_node(pred),
            _ => false,
        }
    }

    /// Visit every node of the expression tree.
    pub fn for_each_node(&self, visit: &mut impl FnMut(&Morphism)) {
        visit(self);
        match self {
            Morphism::Compose(f, g) | Morphism::PairWith(f, g) => {
                f.for_each_node(visit);
                g.for_each_node(visit);
            }
            Morphism::Cond(p, f, g) => {
                p.for_each_node(visit);
                f.for_each_node(visit);
                g.for_each_node(visit);
            }
            Morphism::Map(f) | Morphism::OrMap(f) => f.for_each_node(visit),
            _ => {}
        }
    }
}

impl fmt::Display for Morphism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Morphism::Id => write!(f, "id"),
            Morphism::Compose(g, h) => write!(f, "({g} o {h})"),
            Morphism::Proj1 => write!(f, "pi1"),
            Morphism::Proj2 => write!(f, "pi2"),
            Morphism::PairWith(g, h) => write!(f, "<{g}, {h}>"),
            Morphism::Bang => write!(f, "!"),
            Morphism::Const(c) => write!(f, "K{c}"),
            Morphism::Eq => write!(f, "eq"),
            Morphism::Cond(p, g, h) => write!(f, "cond({p}, {g}, {h})"),
            Morphism::Prim(p) => write!(f, "{}", p.name()),
            Morphism::Eta => write!(f, "eta"),
            Morphism::Mu => write!(f, "mu"),
            Morphism::Map(g) => write!(f, "map({g})"),
            Morphism::Rho2 => write!(f, "rho2"),
            Morphism::Union => write!(f, "union"),
            Morphism::KEmptySet => write!(f, "K{{}}"),
            Morphism::OrEta => write!(f, "or_eta"),
            Morphism::OrMu => write!(f, "or_mu"),
            Morphism::OrMap(g) => write!(f, "ormap({g})"),
            Morphism::OrRho2 => write!(f, "or_rho2"),
            Morphism::OrUnion => write!(f, "or_union"),
            Morphism::KEmptyOrSet => write!(f, "K<>"),
            Morphism::Alpha => write!(f, "alpha"),
            Morphism::OrToSet => write!(f, "ortoset"),
            Morphism::SetToOr => write!(f, "settoor"),
            Morphism::Powerset => write!(f, "powerset"),
            Morphism::Normalize => write!(f, "normalize"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_builds_reverse_composition() {
        let m = Morphism::Proj1.then(Morphism::Eta);
        assert_eq!(
            m,
            Morphism::Compose(Box::new(Morphism::Eta), Box::new(Morphism::Proj1))
        );
    }

    #[test]
    fn size_counts_constructors() {
        let m = Morphism::pair(Morphism::Proj1, Morphism::map(Morphism::Id));
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn uses_normalize_detection() {
        let structural = Morphism::map(Morphism::Proj1);
        assert!(!structural.uses_normalize());
        let conceptual = Morphism::Normalize.then(Morphism::ormap(Morphism::Proj2));
        assert!(conceptual.uses_normalize());
    }

    #[test]
    fn display_is_readable() {
        let m = Morphism::compose(Morphism::OrMu, Morphism::ormap(Morphism::OrEta));
        assert_eq!(m.to_string(), "(or_mu o ormap(or_eta))");
    }

    #[test]
    fn constant_accepts_any_input_via_bang() {
        let m = Morphism::constant(Value::Int(7));
        assert!(matches!(m, Morphism::Compose(_, _)));
    }
}
