//! Lazy (streaming) normalization.
//!
//! The conclusion of the paper suggests producing the elements of a normal
//! form "as elements of a stream", so that an existential query over the
//! normal form can stop as soon as a witness is found, without materializing
//! the whole — generally exponential — normal form.  (The idea was later
//! developed by Libkin in "Normalizing incomplete databases", PODS 1995.)
//!
//! [`LazyNormalizer`] enumerates the conceptual denotations of an object one
//! at a time.  Internally the object is compiled into a plan whose nodes
//! **precompute** how many denotations they have (and, for product nodes,
//! the mixed-radix divisors); the `i`-th denotation is then decoded by a
//! mixed-radix walk, so producing one element costs time proportional to the
//! size of the object, independent of how many elements the full normal form
//! would have.  Counts are computed once at compile time — decoding performs
//! no recursive re-counting and no per-call allocation beyond the output.
//!
//! For the physical engine's α-expansion operator,
//! [`LazyNormalizer::next_interned`] decodes straight into an [`Interner`]
//! arena: the denotation is produced
//! as an [`InternId`] whose sub-structure is shared with every previously
//! decoded world, and equality of worlds is id equality.

use or_object::intern::{InternId, Interner};
use or_object::Value;

use crate::error::EvalError;

/// A compiled enumeration plan for the denotations of an object.  Every node
/// carries its denotation count (with multiplicity, saturating at
/// `u128::MAX`), computed once when the plan is built.
#[derive(Debug, Clone)]
struct Plan {
    count: u128,
    /// For constant subtrees (`count == 1` — or-free parts of the object,
    /// which decode identically in every world): the interned id of that one
    /// denotation, keyed by the arena token it was produced against.
    memo: Option<(u64, InternId)>,
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    /// A base value: exactly one denotation.
    Leaf(Value),
    /// An already-interned **or-free** subtree: exactly one denotation,
    /// namely the id itself.  Produced only by
    /// [`LazyNormalizer::of_interned`]; decoding is the identity (no
    /// re-interning, no materialization), which is what makes interned
    /// α-expansion O(choices) instead of O(row size) per world.  Plans
    /// containing this variant must be driven through
    /// [`LazyNormalizer::next_interned`] with an arena of the same chain.
    Interned(InternId),
    /// A pair: the product of the component enumerations.
    Pair(Box<Plan>, Box<Plan>),
    /// A set (one choice per element position): the product of the element
    /// enumerations, assembled into a set.  `divisors[i]` is the product of
    /// the counts of elements after `i` (last element varies fastest).
    SetOf(Vec<Plan>, Vec<u128>),
    /// An or-set: the disjoint union of the element enumerations.
    OneOf(Vec<Plan>),
}

impl Plan {
    fn compile(v: &Value) -> Plan {
        match v {
            x if x.is_base() => Plan {
                count: 1,
                memo: None,
                kind: PlanKind::Leaf(x.clone()),
            },
            Value::Pair(a, b) => {
                let (a, b) = (Plan::compile(a), Plan::compile(b));
                Plan {
                    count: a.count.saturating_mul(b.count),
                    memo: None,
                    kind: PlanKind::Pair(Box::new(a), Box::new(b)),
                }
            }
            Value::Set(items) | Value::Bag(items) => {
                let items: Vec<Plan> = items.iter().map(Plan::compile).collect();
                let mut divisors = vec![1u128; items.len()];
                for i in (0..items.len().saturating_sub(1)).rev() {
                    divisors[i] = divisors[i + 1].saturating_mul(items[i + 1].count);
                }
                let count = items
                    .iter()
                    .map(|p| p.count)
                    .fold(1u128, |acc, n| acc.saturating_mul(n));
                Plan {
                    count,
                    memo: None,
                    kind: PlanKind::SetOf(items, divisors),
                }
            }
            Value::OrSet(items) => {
                let items: Vec<Plan> = items.iter().map(Plan::compile).collect();
                let count = items
                    .iter()
                    .map(|p| p.count)
                    .fold(0u128, u128::saturating_add);
                Plan {
                    count,
                    memo: None,
                    kind: PlanKind::OneOf(items),
                }
            }
            _ => unreachable!("all shapes covered"),
        }
    }

    /// Compile an enumeration plan straight from an interned object.
    /// Or-free subtrees collapse to [`PlanKind::Interned`] leaves — their
    /// one denotation *is* the id, so per-world decoding touches only the
    /// or-set choice points.
    fn compile_interned(arena: &Interner, id: InternId) -> Plan {
        use or_object::intern::Node;
        let interned_leaf = |id: InternId| Plan {
            count: 1,
            memo: None,
            kind: PlanKind::Interned(id),
        };
        match arena.node(id) {
            Node::Unit | Node::Bool(_) | Node::Int(_) | Node::Str(_) | Node::Null => {
                interned_leaf(id)
            }
            Node::Pair(a, b) => {
                let (a, b) = (
                    Plan::compile_interned(arena, *a),
                    Plan::compile_interned(arena, *b),
                );
                if a.is_interned_leaf() && b.is_interned_leaf() {
                    return interned_leaf(id);
                }
                Plan {
                    count: a.count.saturating_mul(b.count),
                    memo: None,
                    kind: PlanKind::Pair(Box::new(a), Box::new(b)),
                }
            }
            node @ (Node::Set(_) | Node::Bag(_)) => {
                let (items, is_bag) = match node {
                    Node::Set(items) => (items, false),
                    Node::Bag(items) => (items, true),
                    _ => unreachable!("outer match narrows to Set | Bag"),
                };
                let items: Vec<Plan> = items
                    .iter()
                    .map(|&i| Plan::compile_interned(arena, i))
                    .collect();
                // A constant *set* is its own single denotation, but a bag
                // must NOT collapse to itself: normalization converts bags
                // to deduplicated sets, which the non-collapsed SetOf path
                // performs via `arena.set(..)` during decoding.
                if !is_bag && items.iter().all(Plan::is_interned_leaf) {
                    return interned_leaf(id);
                }
                let mut divisors = vec![1u128; items.len()];
                for i in (0..items.len().saturating_sub(1)).rev() {
                    divisors[i] = divisors[i + 1].saturating_mul(items[i + 1].count);
                }
                let count = items
                    .iter()
                    .map(|p| p.count)
                    .fold(1u128, |acc, n| acc.saturating_mul(n));
                Plan {
                    count,
                    memo: None,
                    kind: PlanKind::SetOf(items, divisors),
                }
            }
            Node::OrSet(items) => {
                let items: Vec<Plan> = items
                    .iter()
                    .map(|&i| Plan::compile_interned(arena, i))
                    .collect();
                let count = items
                    .iter()
                    .map(|p| p.count)
                    .fold(0u128, u128::saturating_add);
                Plan {
                    count,
                    memo: None,
                    kind: PlanKind::OneOf(items),
                }
            }
        }
    }

    fn is_interned_leaf(&self) -> bool {
        matches!(self.kind, PlanKind::Interned(_))
    }

    /// Total number of denotations (with multiplicity), saturating at
    /// `u128::MAX`.
    fn count(&self) -> u128 {
        self.count
    }

    /// Decode the `idx`-th denotation (0-based, `idx < self.count()`).
    fn decode(&self, idx: u128) -> Value {
        match &self.kind {
            PlanKind::Leaf(v) => v.clone(),
            PlanKind::Interned(_) => unreachable!(
                "plans built by LazyNormalizer::of_interned must be driven \
                 through next_interned (the arena is needed to decode)"
            ),
            PlanKind::Pair(a, b) => {
                let nb = b.count;
                Value::pair(a.decode(idx / nb), b.decode(idx % nb))
            }
            PlanKind::SetOf(items, divisors) => {
                let mut rest = idx;
                let mut chosen = Vec::with_capacity(items.len());
                for (item, &divisor) in items.iter().zip(divisors.iter()) {
                    chosen.push(item.decode(rest / divisor));
                    rest %= divisor;
                }
                Value::set(chosen)
            }
            PlanKind::OneOf(items) => {
                let mut rest = idx;
                for item in items {
                    if rest < item.count {
                        return item.decode(rest);
                    }
                    rest -= item.count;
                }
                unreachable!("index out of range for or-set plan")
            }
        }
    }

    /// Decode the `idx`-th denotation directly into `arena`, sharing all
    /// repeated sub-structure with previously interned objects.
    ///
    /// Constant subtrees (`count == 1`) decode to the same id in every
    /// world; that id is memoized per arena (checked via
    /// [`Interner::token`]), so the or-free parts of a row are interned once
    /// per row rather than once per world.
    fn decode_interned(&mut self, idx: u128, arena: &mut Interner) -> InternId {
        if self.count == 1 {
            if let Some((token, id)) = self.memo {
                if token == arena.token() {
                    return id;
                }
            }
        }
        let id = match &mut self.kind {
            PlanKind::Leaf(v) => arena.intern(v),
            PlanKind::Interned(id) => return *id,
            PlanKind::Pair(a, b) => {
                let nb = b.count;
                let ia = a.decode_interned(idx / nb, arena);
                let ib = b.decode_interned(idx % nb, arena);
                arena.pair(ia, ib)
            }
            PlanKind::SetOf(items, divisors) => {
                let mut rest = idx;
                let mut chosen = Vec::with_capacity(items.len());
                for (item, &divisor) in items.iter_mut().zip(divisors.iter()) {
                    chosen.push(item.decode_interned(rest / divisor, arena));
                    rest %= divisor;
                }
                arena.set(chosen)
            }
            PlanKind::OneOf(items) => {
                let mut rest = idx;
                let mut found = None;
                for item in items {
                    if rest < item.count {
                        found = Some(item.decode_interned(rest, arena));
                        break;
                    }
                    rest -= item.count;
                }
                found.expect("index out of range for or-set plan")
            }
        };
        if self.count == 1 {
            self.memo = Some((arena.token(), id));
        }
        id
    }
}

/// A lazy enumerator of the conceptual denotations of an object.
///
/// The stream may contain duplicates (they correspond to distinct structural
/// choices); use [`LazyNormalizer::dedup`] when set semantics are required.
#[derive(Debug, Clone)]
pub struct LazyNormalizer {
    plan: Plan,
    next: u128,
    total: u128,
}

impl LazyNormalizer {
    /// Compile an object for lazy normalization.
    pub fn new(v: &Value) -> LazyNormalizer {
        let plan = Plan::compile(v);
        let total = plan.count();
        LazyNormalizer {
            plan,
            next: 0,
            total,
        }
    }

    /// Compile an **interned** object for lazy normalization.  The
    /// normalizer enumerates the same denotations as
    /// [`LazyNormalizer::new`] on the decoded value, but its or-free
    /// subtrees stay as ids: driving it with
    /// [`LazyNormalizer::next_interned`] against an arena of the same
    /// chain performs **zero** re-interning of unchanged sub-structure.
    /// The plain [`Iterator`] interface is not available on normalizers
    /// built this way (there is no arena to decode against).
    pub fn of_interned(arena: &Interner, id: InternId) -> LazyNormalizer {
        let plan = Plan::compile_interned(arena, id);
        let total = plan.count();
        LazyNormalizer {
            plan,
            next: 0,
            total,
        }
    }

    /// The total number of denotations (with multiplicity).
    pub fn total(&self) -> u128 {
        self.total
    }

    /// How many denotations have been produced so far.
    pub fn produced(&self) -> u128 {
        self.next
    }

    /// Produce all remaining denotations, duplicates removed, as an or-set
    /// value (this recovers the eager `normalize`).
    pub fn dedup(self) -> Value {
        let items: Vec<Value> = self.collect();
        Value::orset(items)
    }

    /// Produce the next denotation as an interned id in `arena` (the
    /// hash-consed analogue of [`Iterator::next`]).  Sub-structure is shared
    /// with everything previously interned into the same arena, so a
    /// streaming consumer can deduplicate worlds with a `HashSet<InternId>`
    /// instead of deep comparisons.
    pub fn next_interned(&mut self, arena: &mut Interner) -> Option<InternId> {
        if self.next >= self.total {
            return None;
        }
        let next = self.next;
        let id = self.plan.decode_interned(next, arena);
        self.next += 1;
        Some(id)
    }

    /// Search for a denotation satisfying `pred`, stopping at the first hit.
    /// Returns the witness and the number of denotations inspected.
    pub fn find_witness<F>(&mut self, mut pred: F) -> Result<(Option<Value>, u128), EvalError>
    where
        F: FnMut(&Value) -> Result<bool, EvalError>,
    {
        let mut inspected = 0u128;
        for candidate in self.by_ref() {
            inspected += 1;
            if pred(&candidate)? {
                return Ok((Some(candidate), inspected));
            }
        }
        Ok((None, inspected))
    }
}

impl Iterator for LazyNormalizer {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        if self.next >= self.total {
            return None;
        }
        let v = self.plan.decode(self.next);
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.total - self.next).min(usize::MAX as u128) as usize;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{denotations, normalize_value};

    #[test]
    fn lazy_enumeration_matches_eager_denotations() {
        let v = Value::pair(
            Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]),
            Value::int_orset([1, 2]),
        );
        let eager = denotations(&v);
        let lazy: Vec<Value> = LazyNormalizer::new(&v).collect();
        assert_eq!(eager.len(), lazy.len());
        let mut a = eager.clone();
        let mut b = lazy.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn dedup_recovers_normalize() {
        let v = Value::set([
            Value::orset([Value::int_orset([1, 2])]),
            Value::orset([Value::int_orset([1]), Value::int_orset([2])]),
        ]);
        assert_eq!(LazyNormalizer::new(&v).dedup(), normalize_value(&v));
    }

    #[test]
    fn total_counts_without_materializing() {
        let v = or_object::generate::Generator::alpha_blowup_witness(20);
        let lazy = LazyNormalizer::new(&v);
        assert_eq!(lazy.total(), 1 << 20);
    }

    #[test]
    fn early_exit_inspects_few_candidates() {
        // find a denotation of the 2^16-element normal form containing 0;
        // element 0 is in the very first candidate, so only one inspection.
        let v = or_object::generate::Generator::alpha_blowup_witness(16);
        let mut lazy = LazyNormalizer::new(&v);
        let (witness, inspected) = lazy
            .find_witness(|d| Ok(d.elements().is_some_and(|e| e.contains(&Value::Int(0)))))
            .unwrap();
        assert!(witness.is_some());
        assert_eq!(inspected, 1);
    }

    #[test]
    fn unsatisfiable_search_scans_everything() {
        let v = or_object::generate::Generator::alpha_blowup_witness(8);
        let mut lazy = LazyNormalizer::new(&v);
        let (witness, inspected) = lazy
            .find_witness(|d| Ok(d.elements().is_some_and(|e| e.contains(&Value::Int(999)))))
            .unwrap();
        assert!(witness.is_none());
        assert_eq!(inspected, 256);
    }

    #[test]
    fn interned_enumeration_matches_plain_enumeration() {
        let v = Value::pair(
            Value::set([Value::int_orset([1, 2]), Value::int_orset([3, 4])]),
            Value::int_orset([5, 6]),
        );
        let mut arena = Interner::new();
        let mut interned = LazyNormalizer::new(&v);
        let plain: Vec<Value> = LazyNormalizer::new(&v).collect();
        let mut decoded = Vec::new();
        while let Some(id) = interned.next_interned(&mut arena) {
            decoded.push(arena.value(id));
        }
        assert_eq!(decoded, plain);
    }

    #[test]
    fn interned_enumeration_dedups_by_id() {
        // duplicated alternatives: 4 structural denotations, 2 distinct
        let v = Value::set([Value::orset([Value::int_orset([1, 1, 2])])]);
        let mut arena = Interner::new();
        let mut lazy = LazyNormalizer::new(&v);
        let mut seen = std::collections::HashSet::new();
        while let Some(id) = lazy.next_interned(&mut arena) {
            seen.insert(id);
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn of_interned_enumerates_the_same_worlds_without_reinterning() {
        let v = Value::pair(
            Value::set([Value::int_orset([1, 2]), Value::int_orset([3, 4])]),
            Value::pair(Value::str("fixed"), Value::int_orset([5, 6])),
        );
        let mut arena = Interner::new();
        let id = arena.intern(&v);
        let before = arena.len();
        let mut interned = LazyNormalizer::of_interned(&arena, id);
        let plain: Vec<Value> = LazyNormalizer::new(&v).collect();
        assert_eq!(interned.total(), plain.len() as u128);
        let mut decoded = Vec::new();
        while let Some(world) = interned.next_interned(&mut arena) {
            decoded.push(arena.value(world));
        }
        assert_eq!(decoded, plain);
        // or-free subtrees were reused as ids: only genuinely new world
        // nodes (chosen pairs/sets) may be added, never leaf re-interning
        // of the constant "fixed" etc.
        assert!(arena.len() > before, "worlds add composite nodes");
        // a second pass over an equal row adds nothing at all
        let grown = arena.len();
        let mut again = LazyNormalizer::of_interned(&arena, id);
        while again.next_interned(&mut arena).is_some() {}
        assert_eq!(arena.len(), grown);
    }

    #[test]
    fn of_interned_normalizes_bags_to_sets_like_the_value_path() {
        // normalization converts bags to deduplicated sets; the interned
        // compile must not short-circuit a constant bag to itself
        let v = Value::pair(
            Value::bag([Value::Int(1), Value::Int(1), Value::Int(2)]),
            Value::int_orset([7, 8]),
        );
        let mut arena = Interner::new();
        let id = arena.intern(&v);
        let plain: Vec<Value> = LazyNormalizer::new(&v).collect();
        let mut interned = LazyNormalizer::of_interned(&arena, id);
        let mut decoded = Vec::new();
        while let Some(world) = interned.next_interned(&mut arena) {
            decoded.push(arena.value(world));
        }
        assert_eq!(decoded, plain);
        assert_eq!(
            decoded[0],
            Value::pair(Value::int_set([1, 2]), Value::Int(7))
        );
        // a bag nested under otherwise-constant structure is converted too
        let nested = Value::set([Value::pair(
            Value::Int(3),
            Value::bag([Value::Int(4), Value::Int(4)]),
        )]);
        let id = arena.intern(&nested);
        let mut lazy = LazyNormalizer::of_interned(&arena, id);
        let world = lazy.next_interned(&mut arena).unwrap();
        assert_eq!(
            arena.value(world),
            Value::set([Value::pair(Value::Int(3), Value::int_set([4]))])
        );
    }

    #[test]
    fn of_interned_handles_empty_orsets_and_constants() {
        let mut arena = Interner::new();
        let none = arena.intern(&Value::set([Value::int_orset([1]), Value::empty_orset()]));
        let lazy = LazyNormalizer::of_interned(&arena, none);
        assert_eq!(lazy.total(), 0);
        let constant = arena.intern(&Value::pair(Value::Int(1), Value::int_set([2, 3])));
        let mut lazy = LazyNormalizer::of_interned(&arena, constant);
        assert_eq!(lazy.total(), 1);
        let world = lazy.next_interned(&mut arena).unwrap();
        // the single denotation of an or-free row is the row itself
        assert_eq!(world, constant);
        assert!(lazy.next_interned(&mut arena).is_none());
    }

    #[test]
    fn empty_orset_yields_no_denotations() {
        let v = Value::set([Value::int_orset([1]), Value::empty_orset()]);
        let lazy = LazyNormalizer::new(&v);
        assert_eq!(lazy.total(), 0);
        assert_eq!(lazy.count(), 0);
    }

    #[test]
    fn predicate_errors_propagate() {
        let v = Value::int_orset([1, 2, 3]);
        let mut lazy = LazyNormalizer::new(&v);
        let result = lazy.find_witness(|_| {
            Err(EvalError::Primitive {
                primitive: "test".to_string(),
                message: "boom".to_string(),
            })
        });
        assert!(result.is_err());
    }
}
