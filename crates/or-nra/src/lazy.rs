//! Lazy (streaming) normalization.
//!
//! The conclusion of the paper suggests producing the elements of a normal
//! form "as elements of a stream", so that an existential query over the
//! normal form can stop as soon as a witness is found, without materializing
//! the whole — generally exponential — normal form.  (The idea was later
//! developed by Libkin in "Normalizing incomplete databases", PODS 1995.)
//!
//! [`LazyNormalizer`] enumerates the conceptual denotations of an object one
//! at a time.  Internally the object is compiled into a [`Plan`] whose nodes
//! know how many denotations they have; the `i`-th denotation is then decoded
//! by a mixed-radix walk, so producing one element costs time proportional to
//! the size of the object, independent of how many elements the full normal
//! form would have.

use or_object::Value;

use crate::error::EvalError;

/// A compiled enumeration plan for the denotations of an object.
#[derive(Debug, Clone)]
enum Plan {
    /// A base value: exactly one denotation.
    Leaf(Value),
    /// A pair: the product of the component enumerations.
    Pair(Box<Plan>, Box<Plan>),
    /// A set (one choice per element position): the product of the element
    /// enumerations, assembled into a set.
    SetOf(Vec<Plan>),
    /// An or-set: the disjoint union of the element enumerations.
    OneOf(Vec<Plan>),
}

impl Plan {
    fn compile(v: &Value) -> Plan {
        match v {
            x if x.is_base() => Plan::Leaf(x.clone()),
            Value::Pair(a, b) => Plan::Pair(Box::new(Plan::compile(a)), Box::new(Plan::compile(b))),
            Value::Set(items) | Value::Bag(items) => {
                Plan::SetOf(items.iter().map(Plan::compile).collect())
            }
            Value::OrSet(items) => Plan::OneOf(items.iter().map(Plan::compile).collect()),
            _ => unreachable!("all shapes covered"),
        }
    }

    /// Total number of denotations (with multiplicity), saturating at
    /// `u128::MAX`.
    fn count(&self) -> u128 {
        match self {
            Plan::Leaf(_) => 1,
            Plan::Pair(a, b) => a.count().saturating_mul(b.count()),
            Plan::SetOf(items) => items
                .iter()
                .map(Plan::count)
                .fold(1u128, |acc, n| acc.saturating_mul(n)),
            Plan::OneOf(items) => items
                .iter()
                .map(Plan::count)
                .fold(0u128, u128::saturating_add),
        }
    }

    /// Decode the `idx`-th denotation (0-based, `idx < self.count()`).
    fn decode(&self, idx: u128) -> Value {
        match self {
            Plan::Leaf(v) => v.clone(),
            Plan::Pair(a, b) => {
                let nb = b.count();
                let va = a.decode(idx / nb);
                let vb = b.decode(idx % nb);
                Value::pair(va, vb)
            }
            Plan::SetOf(items) => {
                let mut rest = idx;
                let mut chosen = Vec::with_capacity(items.len());
                // mixed-radix decoding, last element varies fastest
                let radices: Vec<u128> = items.iter().map(Plan::count).collect();
                let mut divisors = vec![1u128; items.len()];
                for i in (0..items.len()).rev() {
                    if i + 1 < items.len() {
                        divisors[i] = divisors[i + 1].saturating_mul(radices[i + 1]);
                    }
                }
                for (i, item) in items.iter().enumerate() {
                    let digit = rest / divisors[i];
                    rest %= divisors[i];
                    chosen.push(item.decode(digit));
                }
                Value::set(chosen)
            }
            Plan::OneOf(items) => {
                let mut rest = idx;
                for item in items {
                    let n = item.count();
                    if rest < n {
                        return item.decode(rest);
                    }
                    rest -= n;
                }
                unreachable!("index out of range for or-set plan")
            }
        }
    }
}

/// A lazy enumerator of the conceptual denotations of an object.
///
/// The stream may contain duplicates (they correspond to distinct structural
/// choices); use [`LazyNormalizer::dedup`] when set semantics are required.
#[derive(Debug, Clone)]
pub struct LazyNormalizer {
    plan: Plan,
    next: u128,
    total: u128,
}

impl LazyNormalizer {
    /// Compile an object for lazy normalization.
    pub fn new(v: &Value) -> LazyNormalizer {
        let plan = Plan::compile(v);
        let total = plan.count();
        LazyNormalizer {
            plan,
            next: 0,
            total,
        }
    }

    /// The total number of denotations (with multiplicity).
    pub fn total(&self) -> u128 {
        self.total
    }

    /// How many denotations have been produced so far.
    pub fn produced(&self) -> u128 {
        self.next
    }

    /// Produce all remaining denotations, duplicates removed, as an or-set
    /// value (this recovers the eager `normalize`).
    pub fn dedup(self) -> Value {
        let items: Vec<Value> = self.collect();
        Value::orset(items)
    }

    /// Search for a denotation satisfying `pred`, stopping at the first hit.
    /// Returns the witness and the number of denotations inspected.
    pub fn find_witness<F>(&mut self, mut pred: F) -> Result<(Option<Value>, u128), EvalError>
    where
        F: FnMut(&Value) -> Result<bool, EvalError>,
    {
        let mut inspected = 0u128;
        for candidate in self.by_ref() {
            inspected += 1;
            if pred(&candidate)? {
                return Ok((Some(candidate), inspected));
            }
        }
        Ok((None, inspected))
    }
}

impl Iterator for LazyNormalizer {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        if self.next >= self.total {
            return None;
        }
        let v = self.plan.decode(self.next);
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.total - self.next).min(usize::MAX as u128) as usize;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{denotations, normalize_value};

    #[test]
    fn lazy_enumeration_matches_eager_denotations() {
        let v = Value::pair(
            Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]),
            Value::int_orset([1, 2]),
        );
        let eager = denotations(&v);
        let lazy: Vec<Value> = LazyNormalizer::new(&v).collect();
        assert_eq!(eager.len(), lazy.len());
        let mut a = eager.clone();
        let mut b = lazy.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn dedup_recovers_normalize() {
        let v = Value::set([
            Value::orset([Value::int_orset([1, 2])]),
            Value::orset([Value::int_orset([1]), Value::int_orset([2])]),
        ]);
        assert_eq!(LazyNormalizer::new(&v).dedup(), normalize_value(&v));
    }

    #[test]
    fn total_counts_without_materializing() {
        let v = or_object::generate::Generator::alpha_blowup_witness(20);
        let lazy = LazyNormalizer::new(&v);
        assert_eq!(lazy.total(), 1 << 20);
    }

    #[test]
    fn early_exit_inspects_few_candidates() {
        // find a denotation of the 2^16-element normal form containing 0;
        // element 0 is in the very first candidate, so only one inspection.
        let v = or_object::generate::Generator::alpha_blowup_witness(16);
        let mut lazy = LazyNormalizer::new(&v);
        let (witness, inspected) = lazy
            .find_witness(|d| Ok(d.elements().is_some_and(|e| e.contains(&Value::Int(0)))))
            .unwrap();
        assert!(witness.is_some());
        assert_eq!(inspected, 1);
    }

    #[test]
    fn unsatisfiable_search_scans_everything() {
        let v = or_object::generate::Generator::alpha_blowup_witness(8);
        let mut lazy = LazyNormalizer::new(&v);
        let (witness, inspected) = lazy
            .find_witness(|d| Ok(d.elements().is_some_and(|e| e.contains(&Value::Int(999)))))
            .unwrap();
        assert!(witness.is_none());
        assert_eq!(inspected, 256);
    }

    #[test]
    fn empty_orset_yields_no_denotations() {
        let v = Value::set([Value::int_orset([1]), Value::empty_orset()]);
        let lazy = LazyNormalizer::new(&v);
        assert_eq!(lazy.total(), 0);
        assert_eq!(lazy.count(), 0);
    }

    #[test]
    fn predicate_errors_propagate() {
        let v = Value::int_orset([1, 2, 3]);
        let mut lazy = LazyNormalizer::new(&v);
        let result = lazy.find_witness(|_| {
            Err(EvalError::Primitive {
                primitive: "test".to_string(),
                message: "boom".to_string(),
            })
        });
        assert!(result.is_err());
    }
}
