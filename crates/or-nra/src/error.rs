//! Error types for type inference, type checking and evaluation.

use std::fmt;

use or_object::Type;

/// Errors produced by the type inference / checking machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two types failed to unify.
    Mismatch {
        /// The type that was expected by the context.
        expected: String,
        /// The type that was actually found.
        found: String,
        /// Human-readable location of the failure (morphism constructor).
        context: String,
    },
    /// The occurs check failed (an infinite type would be required).
    Occurs {
        /// The type variable that occurs in the other type.
        var: u32,
        /// The type in which the variable occurs.
        ty: String,
    },
    /// A morphism requires a type feature that its argument does not have
    /// (e.g. projecting from a non-product).
    Shape {
        /// Description of the problem.
        message: String,
    },
    /// A type could not be made ground (a type variable remains free).
    NotGround {
        /// Rendering of the non-ground type.
        ty: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            TypeError::Occurs { var, ty } => {
                write!(f, "occurs check failed: 't{var} occurs in {ty}")
            }
            TypeError::Shape { message } => write!(f, "{message}"),
            TypeError::NotGround { ty } => write!(f, "type is not ground: {ty}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Errors produced by evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The argument of a morphism had the wrong shape.
    Shape {
        /// The operator that failed.
        operator: String,
        /// Rendering of the offending value.
        value: String,
    },
    /// A primitive was applied to arguments outside its domain.
    Primitive {
        /// The primitive that failed.
        primitive: String,
        /// Description of the problem.
        message: String,
    },
    /// A conditional's predicate did not return a boolean.
    NonBooleanCondition {
        /// Rendering of the predicate result.
        value: String,
    },
    /// The evaluator hit its configured resource limit.
    ResourceLimit {
        /// Which limit was exceeded.
        limit: String,
    },
    /// A type error detected at run time (the value does not fit the
    /// declared input type).
    Type(TypeError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Shape { operator, value } => {
                write!(
                    f,
                    "{operator} applied to a value of the wrong shape: {value}"
                )
            }
            EvalError::Primitive { primitive, message } => {
                write!(f, "primitive {primitive} failed: {message}")
            }
            EvalError::NonBooleanCondition { value } => {
                write!(f, "condition did not evaluate to a boolean: {value}")
            }
            EvalError::ResourceLimit { limit } => write!(f, "resource limit exceeded: {limit}"),
            EvalError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<TypeError> for EvalError {
    fn from(e: TypeError) -> Self {
        EvalError::Type(e)
    }
}

impl EvalError {
    /// Convenience constructor for shape errors.
    pub fn shape(operator: &str, value: &or_object::Value) -> EvalError {
        EvalError::Shape {
            operator: operator.to_string(),
            value: value.to_string(),
        }
    }
}

/// Convenience constructor used by the type checker.
pub fn mismatch(context: &str, expected: &Type, found: &Type) -> TypeError {
    TypeError::Mismatch {
        expected: expected.to_string(),
        found: found.to_string(),
        context: context.to_string(),
    }
}
