//! A rewrite-based simplifier for or-NRA morphisms.
//!
//! The conclusion of the paper points out that "every diagram in the proof of
//! Theorem 4.2 gives rise to a new equation" and that the monad equations of
//! the underlying NRA form an equational theory useful for optimization.
//! This module implements a conservative simplifier over that theory:
//!
//! * category laws: `id ∘ f = f`, `f ∘ id = f`, associativity-agnostic
//!   traversal;
//! * product laws: `π₁ ∘ ⟨f, g⟩ = f`, `π₂ ∘ ⟨f, g⟩ = g`;
//! * monad laws (for both the set and the or-set monad):
//!   `μ ∘ η = id`, `μ ∘ map(η) = id`, `map(id) = id`,
//!   `map(f) ∘ map(g) = map(f ∘ g)`, `map(f) ∘ η = η ∘ f`,
//!   `μ ∘ map(map(f)) = map(f) ∘ μ`;
//! * coherence-diagram equations from Theorem 4.2:
//!   `ormap(ormap(f)) ∘ orμ = orμ ∘ ormap(ormap(... ))` is subsumed by the
//!   monad laws; the `α`-naturality equation
//!   `ormap(map(f)) ∘ α = α ∘ map(ormap(f))` is applied in the direction that
//!   moves `map` below `α` (mapping before combining is never more expensive);
//! * conditional simplifications: constant predicates select a branch,
//!   identical branches drop the test;
//! * `! ∘ f = !` (every morphism is total), `cond(p, f, f) = f`.
//!
//! Every rule preserves semantics for *well-typed* applications; the
//! simplifier never turns a failing evaluation into a succeeding one on the
//! original's domain because all rules are equations of the algebra.

use or_object::Value;

use crate::morphism::Morphism as M;

/// Result statistics of a simplification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Size (constructor count) before.
    pub before: usize,
    /// Size after.
    pub after: usize,
    /// Number of rule applications.
    pub rewrites: usize,
}

/// Simplify a morphism, returning the simplified form and statistics.
pub fn optimize(m: &M) -> (M, OptimizeStats) {
    let before = m.size();
    let mut rewrites = 0;
    let out = simplify(m, &mut rewrites);
    let stats = OptimizeStats {
        before,
        after: out.size(),
        rewrites,
    };
    (out, stats)
}

/// Simplify a morphism (convenience wrapper discarding statistics).
pub fn simplified(m: &M) -> M {
    optimize(m).0
}

fn simplify(m: &M, rewrites: &mut usize) -> M {
    // bottom-up: simplify children first, then apply root rules to fixpoint
    let rebuilt = match m {
        M::Compose(f, g) => M::compose(simplify(f, rewrites), simplify(g, rewrites)),
        M::PairWith(f, g) => M::pair(simplify(f, rewrites), simplify(g, rewrites)),
        M::Cond(p, f, g) => M::cond(
            simplify(p, rewrites),
            simplify(f, rewrites),
            simplify(g, rewrites),
        ),
        M::Map(f) => M::map(simplify(f, rewrites)),
        M::OrMap(f) => M::ormap(simplify(f, rewrites)),
        other => other.clone(),
    };
    let mut cur = rebuilt;
    loop {
        match rewrite_root(&cur) {
            Some(next) => {
                *rewrites += 1;
                // children of the new root may expose further redexes
                cur = match &next {
                    M::Compose(f, g) => M::compose(simplify(f, rewrites), simplify(g, rewrites)),
                    M::Map(f) => M::map(simplify(f, rewrites)),
                    M::OrMap(f) => M::ormap(simplify(f, rewrites)),
                    M::PairWith(f, g) => M::pair(simplify(f, rewrites), simplify(g, rewrites)),
                    other => other.clone(),
                };
            }
            None => return cur,
        }
    }
}

/// Apply one equation at the root, if any applies.
fn rewrite_root(m: &M) -> Option<M> {
    match m {
        M::Map(inner) if **inner == M::Id => Some(M::Id),
        M::OrMap(inner) if **inner == M::Id => Some(M::Id),
        M::Cond(p, f, g) => {
            if f == g {
                return Some((**f).clone());
            }
            if let M::Compose(c, _) = &**p {
                if let M::Const(Value::Bool(b)) = &**c {
                    return Some(if *b { (**f).clone() } else { (**g).clone() });
                }
            }
            if let M::Const(Value::Bool(b)) = &**p {
                return Some(if *b { (**f).clone() } else { (**g).clone() });
            }
            None
        }
        M::Compose(f, g) => rewrite_compose(f, g),
        _ => None,
    }
}

fn rewrite_compose(f: &M, g: &M) -> Option<M> {
    // f ∘ g
    match (f, g) {
        (M::Id, _) => Some(g.clone()),
        (_, M::Id) => Some(f.clone()),
        // ! ∘ g = !   (all morphisms are total functions)
        (M::Bang, _) => Some(M::Bang),
        // Kc ∘ g  stays as is (g might fail on ill-typed input only; under
        // well-typedness it could be dropped, but we keep it conservative).

        // projections of a pair
        (M::Proj1, M::PairWith(a, _)) => Some((**a).clone()),
        (M::Proj2, M::PairWith(_, b)) => Some((**b).clone()),
        // (f1 ∘ f2) ∘ g — reassociate to expose adjacent redexes
        (M::Compose(f1, f2), _) => {
            let inner = rewrite_compose(f2, g)
                .map(|r| M::compose((**f1).clone(), r));
            match inner {
                Some(result) => Some(result),
                None => None,
            }
        }
        // monad laws — set monad
        (M::Mu, M::Eta) => Some(M::Id),
        (M::Mu, M::Map(inner)) if **inner == M::Eta => Some(M::Id),
        (M::Map(mf), M::Map(mg)) => Some(M::map(M::compose((**mf).clone(), (**mg).clone()))),
        (M::Map(mf), M::Eta) => Some(M::compose(M::Eta, (**mf).clone())),
        (M::Mu, M::Map(inner)) => {
            // μ ∘ map(map(f)) = map(f) ∘ μ
            if let M::Map(deep) = &**inner {
                Some(M::compose(M::map((**deep).clone()), M::Mu))
            } else {
                None
            }
        }
        // monad laws — or-set monad
        (M::OrMu, M::OrEta) => Some(M::Id),
        (M::OrMu, M::OrMap(inner)) if **inner == M::OrEta => Some(M::Id),
        (M::OrMap(mf), M::OrMap(mg)) => {
            Some(M::ormap(M::compose((**mf).clone(), (**mg).clone())))
        }
        (M::OrMap(mf), M::OrEta) => Some(M::compose(M::OrEta, (**mf).clone())),
        (M::OrMu, M::OrMap(inner)) => {
            if let M::OrMap(deep) = &**inner {
                Some(M::compose(M::ormap((**deep).clone()), M::OrMu))
            } else {
                None
            }
        }
        // α-naturality (a Theorem 4.2 diagram): ormap(map(f)) ∘ α = α ∘ map(ormap(f))
        (M::OrMap(inner), M::Alpha) => {
            if let M::Map(deep) = &**inner {
                Some(M::compose(M::Alpha, M::map(M::ormap((**deep).clone()))))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::morphism::Prim;
    use or_object::generate::Generator;
    use or_object::Value;

    #[test]
    fn identity_compositions_collapse() {
        let m = M::Id.then(M::Proj1).then(M::Id);
        assert_eq!(simplified(&m), M::Proj1);
    }

    #[test]
    fn projection_of_pair_simplifies() {
        let m = M::pair(M::Proj2, M::Proj1).then(M::Proj1);
        assert_eq!(simplified(&m), M::Proj2);
    }

    #[test]
    fn monad_laws_collapse_eta_mu() {
        assert_eq!(simplified(&M::Eta.then(M::Mu)), M::Id);
        assert_eq!(simplified(&M::map(M::Eta).then(M::Mu)), M::Id);
        assert_eq!(simplified(&M::OrEta.then(M::OrMu)), M::Id);
        assert_eq!(simplified(&M::ormap(M::OrEta).then(M::OrMu)), M::Id);
    }

    #[test]
    fn map_fusion() {
        let m = M::map(M::Proj1).then(M::map(M::Eta));
        let s = simplified(&m);
        assert_eq!(s, M::map(M::Proj1.then(M::Eta)));
        assert!(s.size() <= m.size());
    }

    #[test]
    fn cond_with_constant_predicate_selects_branch() {
        let m = M::cond(
            M::constant(Value::Bool(true)),
            M::Proj1,
            M::Proj2,
        );
        assert_eq!(simplified(&m), M::Proj1);
        let m = M::cond(M::constant(Value::Bool(false)), M::Proj1, M::Proj2);
        assert_eq!(simplified(&m), M::Proj2);
    }

    #[test]
    fn cond_with_equal_branches_drops_the_test() {
        let m = M::cond(M::Prim(Prim::Leq), M::Proj1, M::Proj1);
        assert_eq!(simplified(&m), M::Proj1);
    }

    #[test]
    fn alpha_naturality_moves_map_below_alpha() {
        let m = M::Alpha.then(M::ormap(M::map(M::Proj1)));
        let s = simplified(&m);
        assert_eq!(s, M::map(M::ormap(M::Proj1)).then(M::Alpha));
    }

    #[test]
    fn simplification_preserves_semantics_on_samples() {
        let samples: Vec<(M, Value)> = vec![
            (
                M::map(M::Proj1).then(M::map(M::Eta)).then(M::Mu),
                Value::set([
                    Value::pair(Value::Int(1), Value::Int(2)),
                    Value::pair(Value::Int(3), Value::Int(4)),
                ]),
            ),
            (
                M::pair(M::Proj2, M::Proj1).then(M::Proj1).then(M::OrEta).then(M::ormap(M::Id)),
                Value::pair(Value::Int(1), Value::Int(2)),
            ),
            (
                M::Alpha.then(M::ormap(M::map(M::Id))),
                Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]),
            ),
            (
                crate::derived::or_select(
                    M::pair(M::Id, M::constant(Value::Int(2))).then(M::Prim(Prim::Leq)),
                ),
                Value::int_orset([1, 2, 3]),
            ),
        ];
        for (m, v) in samples {
            let s = simplified(&m);
            assert_eq!(
                eval(&m, &v).unwrap(),
                eval(&s, &v).unwrap(),
                "simplification changed the meaning of {m}"
            );
            assert!(s.size() <= m.size());
        }
    }

    #[test]
    fn optimizer_reports_statistics() {
        let m = M::Id.then(M::map(M::Id)).then(M::Id);
        let (s, stats) = optimize(&m);
        assert_eq!(s, M::Id);
        assert!(stats.rewrites >= 2);
        assert!(stats.after < stats.before);
    }

    #[test]
    fn expanded_normalize_morphisms_shrink_but_keep_meaning() {
        let t = or_object::Type::prod(
            or_object::Type::set(or_object::Type::orset(or_object::Type::Int)),
            or_object::Type::orset(or_object::Type::Int),
        );
        let m = crate::expand::expand_normalize(&t).unwrap();
        let s = simplified(&m);
        assert!(s.size() <= m.size());
        let mut gen = Generator::with_seed(5);
        for _ in 0..10 {
            let v = gen.object_of(&t);
            assert_eq!(eval(&m, &v).unwrap(), eval(&s, &v).unwrap());
        }
    }
}
