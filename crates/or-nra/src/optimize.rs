//! A rewrite-based simplifier for or-NRA morphisms.
//!
//! The conclusion of the paper points out that "every diagram in the proof of
//! Theorem 4.2 gives rise to a new equation" and that the monad equations of
//! the underlying NRA form an equational theory useful for optimization.
//! This module implements a conservative simplifier over that theory:
//!
//! * category laws: `id ∘ f = f`, `f ∘ id = f`, associativity-agnostic
//!   traversal;
//! * product laws: `π₁ ∘ ⟨f, g⟩ = f`, `π₂ ∘ ⟨f, g⟩ = g`;
//! * monad laws (for both the set and the or-set monad):
//!   `μ ∘ η = id`, `μ ∘ map(η) = id`, `map(id) = id`,
//!   `map(f) ∘ map(g) = map(f ∘ g)`, `map(f) ∘ η = η ∘ f`,
//!   `μ ∘ map(map(f)) = map(f) ∘ μ`;
//! * coherence-diagram equations from Theorem 4.2:
//!   `ormap(ormap(f)) ∘ orμ = orμ ∘ ormap(ormap(... ))` is subsumed by the
//!   monad laws; the `α`-naturality equation
//!   `ormap(map(f)) ∘ α = α ∘ map(ormap(f))` is applied in the direction that
//!   moves `map` below `α` (mapping before combining is never more expensive);
//! * conditional simplifications: constant predicates select a branch,
//!   identical branches drop the test;
//! * `! ∘ f = !` (every morphism is total), `cond(p, f, f) = f`.
//!
//! Every rule preserves semantics for *well-typed* applications; the
//! simplifier never turns a failing evaluation into a succeeding one on the
//! original's domain because all rules are equations of the algebra.
//!
//! # The expand planner: placing operators around `or_α`
//!
//! Besides the morphism-level simplifier, this module contains a **plan**
//! -level optimizer, [`optimize_expansion`], targeting the one physically
//! exponential operator: `OrExpand`, the per-row α-expansion
//! `μ ∘ map(ortoset ∘ normalize)` that turns a relation of or-set-carrying
//! rows into the set of its complete possible worlds.
//!
//! ## When does a filter commute with `or_α`?
//!
//! A filter placed *above* an `OrExpand` runs once per possible world; the
//! same filter placed *below* runs once per row and prevents discarded rows
//! from being expanded at all.  The rewrite
//!
//! ```text
//! Filter[p] ∘ OrExpand   ⟶   OrExpand ∘ Filter[p]
//! ```
//!
//! is sound exactly when `p`'s answer is the same on a row and on every
//! complete world of that row.  The syntactic conditions of the paper's
//! Theorem 5.1 (checked by [`crate::preserve::commutes_with_or_alpha`]
//! against the **unexpanded** row type) guarantee this: for such `p`,
//! `normalize ∘ orη ∘ p = preserve(p) ∘ normalize ∘ orη` with `preserve(p)`
//! map-like, so `p` is constant across the worlds of each row.  Predicates
//! that *read* or-set structure — `=` at an or-set type, a primitive whose
//! type mentions or-sets — fail the conditions and stay above the expansion.
//!
//! **Worked example** (mirroring the paper's Section 4 normalization): take
//! rows of type `int × (⟨int⟩ × ⟨int⟩)`, e.g. `(7, (<1,2,3>, <4,5>))`, and
//! the query "expand, then keep worlds with id ≤ 30":
//!
//! ```text
//! Filter[leq ∘ ⟨id, K30⟩ ∘ π₁]          -- world-level filter: runs 6×/row
//!   OrExpand[dedup=true]                 -- 6 worlds per row
//!     Scan(#0)
//! ```
//!
//! The predicate reads only the or-free `id` component, so
//! `commutes_with_or_alpha` accepts it at the row type and the planner emits
//!
//! ```text
//! OrExpand[dedup=true]                   -- expands *surviving* rows only
//!   Filter[leq ∘ ⟨id, K30⟩ ∘ π₁]        -- row-level filter: runs 1×/row
//!     Scan(#0)
//! ```
//!
//! For a selectivity-σ filter this divides the expansion work by 1/σ.  Had
//! the predicate compared the `⟨int⟩` field itself (structural equality at
//! an or-set type — the paper's canonical non-preserved operation), the
//! preconditions would flag it and the plan would be left alone.
//!
//! Projections move below `OrExpand` by the same theorem, with one extra
//! proviso: Theorem 5.1 is stated for inputs free of empty or-sets.  A row
//! containing an *empty* or-set denotes **no** worlds (`OrExpand` emits
//! nothing), but if a projection dropped exactly the empty component before
//! expansion, the projected row would suddenly denote a world.  Projection
//! pushdown is therefore gated behind
//! [`ExpandPlannerConfig::assume_consistent`], an explicit promise that no
//! row contains an empty or-set; filters need no such promise (they drop or
//! keep whole rows, so an inconsistent row yields nothing on either side).
//!
//! ## Cost model and partition-local expansion
//!
//! Placement is paired with a cardinality estimate: the planner samples the
//! driving input's rows and computes their closed-form world counts
//! ([`crate::cost::estimate_expansion`] /
//! [`crate::cost::row_expansion_count`] — O(row size), no materialization).
//! From the estimated total it recommends a worker count for the engine's
//! partitioned executor ([`crate::cost::ExpandEstimate::recommended_workers`]):
//! one big expand becomes `w` partition-local expands, each worker expanding
//! and locally deduplicating its own row range, with the executor's merge
//! step (set union) combining the partial world-sets.  Expansions too small
//! to amortize a thread stay sequential.

use or_object::{Type, Value};

use crate::cost::{estimate_expansion_where, ExpandEstimate};
use crate::infer::output_type;
use crate::morphism::Morphism as M;
use crate::physical::{LowerError, PhysicalPlan};
use crate::preserve::commutes_with_or_alpha;

/// Result statistics of a simplification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Size (constructor count) before.
    pub before: usize,
    /// Size after.
    pub after: usize,
    /// Number of rule applications.
    pub rewrites: usize,
}

/// Simplify a morphism, returning the simplified form and statistics.
pub fn optimize(m: &M) -> (M, OptimizeStats) {
    let before = m.size();
    let mut rewrites = 0;
    let out = simplify(m, &mut rewrites);
    let stats = OptimizeStats {
        before,
        after: out.size(),
        rewrites,
    };
    (out, stats)
}

/// Simplify a morphism (convenience wrapper discarding statistics).
pub fn simplified(m: &M) -> M {
    optimize(m).0
}

fn simplify(m: &M, rewrites: &mut usize) -> M {
    // bottom-up: simplify children first, then apply root rules to fixpoint
    let rebuilt = match m {
        M::Compose(f, g) => M::compose(simplify(f, rewrites), simplify(g, rewrites)),
        M::PairWith(f, g) => M::pair(simplify(f, rewrites), simplify(g, rewrites)),
        M::Cond(p, f, g) => M::cond(
            simplify(p, rewrites),
            simplify(f, rewrites),
            simplify(g, rewrites),
        ),
        M::Map(f) => M::map(simplify(f, rewrites)),
        M::OrMap(f) => M::ormap(simplify(f, rewrites)),
        other => other.clone(),
    };
    let mut cur = rebuilt;
    loop {
        match rewrite_root(&cur) {
            Some(next) => {
                *rewrites += 1;
                // children of the new root may expose further redexes
                cur = match &next {
                    M::Compose(f, g) => M::compose(simplify(f, rewrites), simplify(g, rewrites)),
                    M::Map(f) => M::map(simplify(f, rewrites)),
                    M::OrMap(f) => M::ormap(simplify(f, rewrites)),
                    M::PairWith(f, g) => M::pair(simplify(f, rewrites), simplify(g, rewrites)),
                    other => other.clone(),
                };
            }
            None => return cur,
        }
    }
}

/// Apply one equation at the root, if any applies.
fn rewrite_root(m: &M) -> Option<M> {
    match m {
        M::Map(inner) if **inner == M::Id => Some(M::Id),
        M::OrMap(inner) if **inner == M::Id => Some(M::Id),
        M::Cond(p, f, g) => {
            if f == g {
                return Some((**f).clone());
            }
            if let M::Compose(c, _) = &**p {
                if let M::Const(Value::Bool(b)) = &**c {
                    return Some(if *b { (**f).clone() } else { (**g).clone() });
                }
            }
            if let M::Const(Value::Bool(b)) = &**p {
                return Some(if *b { (**f).clone() } else { (**g).clone() });
            }
            None
        }
        M::Compose(f, g) => rewrite_compose(f, g),
        _ => None,
    }
}

fn rewrite_compose(f: &M, g: &M) -> Option<M> {
    // f ∘ g
    match (f, g) {
        (M::Id, _) => Some(g.clone()),
        (_, M::Id) => Some(f.clone()),
        // ! ∘ g = !   (all morphisms are total functions)
        (M::Bang, _) => Some(M::Bang),
        // Kc ∘ g  stays as is (g might fail on ill-typed input only; under
        // well-typedness it could be dropped, but we keep it conservative).

        // projections of a pair
        (M::Proj1, M::PairWith(a, _)) => Some((**a).clone()),
        (M::Proj2, M::PairWith(_, b)) => Some((**b).clone()),
        // (f1 ∘ f2) ∘ g — reassociate to expose adjacent redexes
        (M::Compose(f1, f2), _) => rewrite_compose(f2, g).map(|r| M::compose((**f1).clone(), r)),
        // monad laws — set monad
        (M::Mu, M::Eta) => Some(M::Id),
        (M::Mu, M::Map(inner)) if **inner == M::Eta => Some(M::Id),
        (M::Map(mf), M::Map(mg)) => Some(M::map(M::compose((**mf).clone(), (**mg).clone()))),
        (M::Map(mf), M::Eta) => Some(M::compose(M::Eta, (**mf).clone())),
        (M::Mu, M::Map(inner)) => {
            // μ ∘ map(map(f)) = map(f) ∘ μ
            if let M::Map(deep) = &**inner {
                Some(M::compose(M::map((**deep).clone()), M::Mu))
            } else {
                None
            }
        }
        // monad laws — or-set monad
        (M::OrMu, M::OrEta) => Some(M::Id),
        (M::OrMu, M::OrMap(inner)) if **inner == M::OrEta => Some(M::Id),
        (M::OrMap(mf), M::OrMap(mg)) => Some(M::ormap(M::compose((**mf).clone(), (**mg).clone()))),
        (M::OrMap(mf), M::OrEta) => Some(M::compose(M::OrEta, (**mf).clone())),
        (M::OrMu, M::OrMap(inner)) => {
            if let M::OrMap(deep) = &**inner {
                Some(M::compose(M::ormap((**deep).clone()), M::OrMu))
            } else {
                None
            }
        }
        // α-naturality (a Theorem 4.2 diagram): ormap(map(f)) ∘ α = α ∘ map(ormap(f))
        (M::OrMap(inner), M::Alpha) => {
            if let M::Map(deep) = &**inner {
                Some(M::compose(M::Alpha, M::map(M::ormap((**deep).clone()))))
            } else {
                None
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// lowering to physical plans
// ---------------------------------------------------------------------------

/// Lower a morphism `{s} → {t}` into a [`PhysicalPlan`] over a single scan
/// (input slot 0).
///
/// The morphism is first [`simplified`] (the monad laws collapse the
/// comprehension compiler's `μ ∘ map(…) ∘ η` scaffolding), then its
/// composition chain is matched against the **set-pipeline fragment**:
///
/// * `id` — the bare scan;
/// * `map(f)` — [`PhysicalPlan::Project`];
/// * `μ ∘ map(cond(p, η, K{} ∘ !))` (the `select(p)` shape) —
///   [`PhysicalPlan::Filter`];
/// * `μ ∘ map(ortoset ∘ normalize)` (per-row α-expansion) —
///   [`PhysicalPlan::OrExpand`];
/// * a bare `μ` stage (each intermediate row is itself a set) —
///   [`PhysicalPlan::Flatten`]; this is what the comprehension compiler's
///   *dependent* generators (`{ x | xs <- db, x <- xs }`) reduce to after
///   simplification: `map(ρ₂ ∘ …)` projects each row to a set of extended
///   rows and the following `μ` streams their elements;
/// * `∪ ∘ ⟨f, g⟩` (the `union(a, b)` translation) — [`PhysicalPlan::Union`]
///   of the two lowered arms, each grafted onto the pipeline built so far;
/// * a leading `ρ₂ ∘ e` prefix, where `e` builds an `(env, {rows})` pair
///   from the input set (the OrQL environment-tuple translation) —
///   [`PhysicalPlan::AttachEnv`].
///
/// Anything outside this fragment (or-monad pipelines, whole-relation
/// `normalize`) returns a [`LowerError`]; callers such as the OrQL session
/// fall back to the tree-walking interpreter.  Binary operators over
/// *distinct* relations (`Cartesian`, `Join`) are built directly through the
/// [`PhysicalPlan`] builder API, since a morphism's single input cannot
/// reference two relations.
pub fn lower(m: &M) -> Result<PhysicalPlan, LowerError> {
    let simplified = simplified(m);
    let mut stages = Vec::new();
    flatten_into(&simplified, &mut stages);
    // `stages` is now in application order (first applied first).
    let mut plan = PhysicalPlan::scan(0);
    let mut i = 0;
    // A leading prefix of row-building stages ending in ρ₂ becomes
    // AttachEnv: `ρ₂ ∘ e` streams the set component of `e`'s output paired
    // with its environment component.  A bare leading ρ₂ (no prefix) is NOT
    // lowerable: it would require the engine's set-of-rows input to itself
    // be a pair, which is outside the `{rows} → {t}` contract.
    if let Some(rho_at) = leading_rho2_prefix(&stages) {
        let setup = compose_stages(&stages[..rho_at]);
        plan = plan.attach_env(setup);
        i = rho_at + 1;
    } else if let Some((setup, consumed)) = match_eta_scaffold(&stages) {
        // The unsimplified comprehension shape
        // `μ ∘ map(ρ₂ ∘ ⟨a, b⟩ ∘ d) ∘ η ∘ p`: the η wraps the whole input,
        // the map body splits it into (env, source-set), and the μ unwraps —
        // semantically the same AttachEnv.
        plan = plan.attach_env(setup);
        i = consumed;
    }
    while i < stages.len() {
        let stage = stages[i];
        let next = stages.get(i + 1).copied();
        match stage {
            M::Id => {
                i += 1;
            }
            // η directly followed by μ cancels (the monad law μ ∘ η = id);
            // the comprehension compiler's scaffolding reaches `lower` in
            // this shape when the simplifier's local rewrites cannot see
            // across the composition's association.
            M::Eta if next == Some(&M::Mu) => {
                i += 2;
            }
            // ∪ ∘ ⟨f, g⟩: both arms consume the stream built so far, and the
            // engine's canonical merge makes concatenation an exact union.
            M::PairWith(a, b) if next == Some(&M::Union) => {
                let left = graft(lower(a)?, &plan);
                let right = graft(lower(b)?, &plan);
                plan = PhysicalPlan::Union {
                    left: Box::new(left),
                    right: Box::new(right),
                };
                i += 2;
            }
            // a bare μ: every row of the stream is itself a set — stream the
            // elements (row-wise flattening is partitionable).
            M::Mu => {
                plan = plan.flatten();
                i += 1;
            }
            M::Map(body) => {
                // two-stage shapes consume the following μ
                if next == Some(&M::Mu) {
                    if let Some(p) = as_select_body(body) {
                        plan = plan.filter(p.clone());
                        i += 2;
                        continue;
                    }
                    if is_or_expand_body(body) {
                        plan = PhysicalPlan::OrExpand {
                            budget: None,
                            dedup: true,
                            input: Box::new(plan),
                        };
                        i += 2;
                        continue;
                    }
                }
                plan = plan.project((**body).clone());
                i += 1;
            }
            other => {
                return Err(LowerError {
                    unsupported: other.to_string(),
                })
            }
        }
    }
    Ok(plan)
}

/// Replace every `Scan(0)` leaf of an arm plan produced by a recursive
/// [`lower`] call with `base` — the pipeline built so far.  `lower` emits
/// plans over the single placeholder slot 0 ("the current stream"), so the
/// substitution splices the arm onto the prefix.  A non-trivial prefix is
/// duplicated into both arms of a `Union` (recomputed, not shared); the
/// common OrQL shapes reach this with a bare scan prefix.
fn graft(plan: PhysicalPlan, base: &PhysicalPlan) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Scan(0) => base.clone(),
        leaf @ PhysicalPlan::Scan(_) => leaf,
        PhysicalPlan::Filter { predicate, input } => PhysicalPlan::Filter {
            predicate,
            input: Box::new(graft(*input, base)),
        },
        PhysicalPlan::Project { f, input } => PhysicalPlan::Project {
            f,
            input: Box::new(graft(*input, base)),
        },
        PhysicalPlan::AttachEnv { setup, input } => PhysicalPlan::AttachEnv {
            setup,
            input: Box::new(graft(*input, base)),
        },
        PhysicalPlan::Flatten { input } => PhysicalPlan::Flatten {
            input: Box::new(graft(*input, base)),
        },
        PhysicalPlan::OrExpand {
            budget,
            dedup,
            input,
        } => PhysicalPlan::OrExpand {
            budget,
            dedup,
            input: Box::new(graft(*input, base)),
        },
        PhysicalPlan::Union { left, right } => PhysicalPlan::Union {
            left: Box::new(graft(*left, base)),
            right: Box::new(graft(*right, base)),
        },
        PhysicalPlan::Cartesian { left, right } => PhysicalPlan::Cartesian {
            left: Box::new(graft(*left, base)),
            right: Box::new(graft(*right, base)),
        },
        PhysicalPlan::Join {
            predicate,
            left,
            right,
        } => PhysicalPlan::Join {
            predicate,
            left: Box::new(graft(*left, base)),
            right: Box::new(graft(*right, base)),
        },
    }
}

/// Flatten a composition tree into application order.
fn flatten_into<'m>(m: &'m M, out: &mut Vec<&'m M>) {
    match m {
        M::Compose(f, g) => {
            flatten_into(g, out);
            flatten_into(f, out);
        }
        other => out.push(other),
    }
}

/// If the stage list starts with zero or more non-set-operator stages
/// followed by `ρ₂`, return the index of the `ρ₂`.
fn leading_rho2_prefix(stages: &[&M]) -> Option<usize> {
    let rho_at = stages.iter().position(|s| matches!(s, M::Rho2))?;
    // A bare leading ρ₂ has no setup morphism to build the (env, {rows})
    // pair from the input set — it is outside the lowerable fragment.
    if rho_at == 0 {
        return None;
    }
    let prefix_ok = stages[..rho_at]
        .iter()
        .all(|s| !matches!(s, M::Map(_) | M::Mu | M::Eta | M::OrMap(_) | M::OrMu));
    if prefix_ok {
        Some(rho_at)
    } else {
        None
    }
}

/// Match a leading `μ ∘ map(ρ₂ ∘ ⟨a, b⟩ ∘ d) ∘ η ∘ p` scaffold (stage order
/// `p…, η, map(…), μ`) and return the equivalent AttachEnv setup morphism
/// `⟨a ∘ d ∘ p, b ∘ d ∘ p⟩` plus the number of stages consumed.
fn match_eta_scaffold(stages: &[&M]) -> Option<(M, usize)> {
    let eta_at = stages.iter().position(|s| {
        matches!(
            s,
            M::Map(_) | M::Mu | M::Eta | M::Rho2 | M::OrMap(_) | M::OrMu
        )
    })?;
    if !matches!(stages[eta_at], M::Eta) {
        return None;
    }
    let body = match stages.get(eta_at + 1) {
        Some(M::Map(body)) => body,
        _ => return None,
    };
    if !matches!(stages.get(eta_at + 2), Some(M::Mu)) {
        return None;
    }
    let mut body_stages = Vec::new();
    flatten_into(body, &mut body_stages);
    let (rho, rest) = body_stages.split_last()?;
    if !matches!(rho, M::Rho2) {
        return None;
    }
    let (pairw, d_stages) = rest.split_last()?;
    let M::PairWith(a, b) = pairw else {
        return None;
    };
    // p then d, then split into the pair's components
    let mut p_stages: Vec<&M> = stages[..eta_at].to_vec();
    p_stages.extend(d_stages.iter().copied());
    let p = compose_stages(&p_stages);
    let setup = M::pair(p.clone().then((**a).clone()), p.then((**b).clone()));
    Some((setup, eta_at + 3))
}

/// Re-compose a stage slice (application order) into a single morphism.
fn compose_stages(stages: &[&M]) -> M {
    let mut it = stages.iter();
    let first = it.next().map(|m| (*m).clone()).unwrap_or(M::Id);
    it.fold(first, |acc, stage| acc.then((*stage).clone()))
}

/// Match `cond(p, η, K{} ∘ !)` — the body of the `select` encoding — and
/// return the predicate.
fn as_select_body(body: &M) -> Option<&M> {
    if let M::Cond(p, then_branch, else_branch) = body {
        if **then_branch == M::Eta && is_empty_set_constant(else_branch) {
            return Some(p);
        }
    }
    None
}

/// Match `K{} ∘ !` (and bare `K{}`).
fn is_empty_set_constant(m: &M) -> bool {
    match m {
        M::KEmptySet => true,
        M::Compose(f, g) => **f == M::KEmptySet && **g == M::Bang,
        _ => false,
    }
}

/// Match `ortoset ∘ normalize` — the per-row α-expansion body.
fn is_or_expand_body(body: &M) -> bool {
    matches!(body, M::Compose(f, g) if **f == M::OrToSet && **g == M::Normalize)
}

// ---------------------------------------------------------------------------
// the expand planner (plan-level, cost-based)
// ---------------------------------------------------------------------------

/// Configuration of the expand planner (see the module docs for the rules).
#[derive(Debug, Clone)]
pub struct ExpandPlannerConfig {
    /// Row types of the input slots (`row_types[i]` types `Scan(i)`'s rows).
    /// Slots without a known type are never rewritten around — the
    /// preservation conditions cannot be checked without a type.
    pub row_types: Vec<Type>,
    /// Promise that no input row contains an empty or-set (the Theorem 5.1
    /// proviso).  Enables projection pushdown below `OrExpand`; filters are
    /// pushed regardless.
    pub assume_consistent: bool,
    /// Hardware threads available to the executor.
    pub available_workers: usize,
    /// At most this many rows are inspected for the cardinality estimate.
    pub sample_cap: usize,
}

impl Default for ExpandPlannerConfig {
    fn default() -> Self {
        ExpandPlannerConfig {
            row_types: Vec::new(),
            assume_consistent: false,
            available_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sample_cap: 64,
        }
    }
}

impl ExpandPlannerConfig {
    /// Set the row type of input slot 0 (the common single-relation case).
    pub fn with_row_type(mut self, ty: Type) -> Self {
        self.row_types = vec![ty];
        self
    }

    /// Promise the inputs contain no empty or-sets.
    pub fn with_consistent_inputs(mut self) -> Self {
        self.assume_consistent = true;
        self
    }

    /// Override the available worker count.
    pub fn with_available_workers(mut self, workers: usize) -> Self {
        self.available_workers = workers.max(1);
        self
    }
}

/// What the expand planner did and what it measured.
#[derive(Debug, Clone)]
pub struct ExpandPlanReport {
    /// Filters moved below an `OrExpand`.
    pub pushed_filters: usize,
    /// Projections moved below an `OrExpand`.
    pub pushed_projects: usize,
    /// Cardinality estimate of the driving input (when rows were provided
    /// and the plan contains an `OrExpand`).
    pub estimate: Option<ExpandEstimate>,
    /// Worker count the executor should use for this plan.
    pub recommended_workers: usize,
}

/// The row type produced by a subplan, given the input-slot row types.
/// `None` when a type cannot be derived (unknown slot, morphism that fails
/// to typecheck, …) — callers must then leave the plan alone.
fn output_row_type(plan: &PhysicalPlan, row_types: &[Type]) -> Option<Type> {
    match plan {
        PhysicalPlan::Scan(i) => row_types.get(*i).cloned(),
        PhysicalPlan::Filter { input, .. } => output_row_type(input, row_types),
        PhysicalPlan::Project { f, input } => {
            let in_ty = output_row_type(input, row_types)?;
            output_type(f, &in_ty).ok()
        }
        PhysicalPlan::AttachEnv { setup, input } => {
            // setup : {t} → env × {t'}; rows become (env, t') pairs
            let in_ty = output_row_type(input, row_types)?;
            match output_type(setup, &Type::set(in_ty)).ok()? {
                Type::Prod(env, rows) => match *rows {
                    Type::Set(elem) => Some(Type::prod(*env, *elem)),
                    _ => None,
                },
                _ => None,
            }
        }
        PhysicalPlan::Cartesian { left, right } | PhysicalPlan::Join { left, right, .. } => {
            let l = output_row_type(left, row_types)?;
            let r = output_row_type(right, row_types)?;
            Some(Type::prod(l, r))
        }
        PhysicalPlan::Union { left, right } => {
            let l = output_row_type(left, row_types)?;
            let r = output_row_type(right, row_types)?;
            (l == r).then_some(l)
        }
        PhysicalPlan::Flatten { input } => match output_row_type(input, row_types)? {
            Type::Set(elem) => Some(*elem),
            _ => None,
        },
        // each world of a row of type t is a complete instance: t with the
        // or-set constructors stripped (Proposition 4.1's t')
        PhysicalPlan::OrExpand { input, .. } => {
            Some(output_row_type(input, row_types)?.strip_orsets())
        }
    }
}

/// Cost-based expand planning: push filters (and, for consistent inputs,
/// projections) below `OrExpand` wherever the Theorem 5.1 preservation
/// conditions allow, and recommend a worker count for partition-local
/// expansion from a sampled cardinality estimate of `inputs`.
///
/// The rewritten plan computes the same world-set as `plan` on every input
/// (for projections: on every input without empty or-sets, which
/// [`ExpandPlannerConfig::assume_consistent`] promises).  See the module
/// docs for the full rule set and a worked example.
pub fn optimize_expansion(
    plan: &PhysicalPlan,
    inputs: &[&[Value]],
    config: &ExpandPlannerConfig,
) -> (PhysicalPlan, ExpandPlanReport) {
    let mut report = ExpandPlanReport {
        pushed_filters: 0,
        pushed_projects: 0,
        estimate: None,
        recommended_workers: config.available_workers.max(1),
    };
    let plan = push_below_expand(plan.clone(), config, &mut report);
    if contains_or_expand(&plan) {
        if let Some(rows) = inputs.get(plan.driving_scan()) {
            // The expansion only sees rows that pass the filters *below* it
            // (including the ones this planner just pushed down), so sampled
            // rows failing them must not count toward the work estimate.
            let predicates = filters_below_expand(&plan);
            let estimate = estimate_expansion_where(rows, config.sample_cap, |row| {
                predicates.iter().all(|p| {
                    // an erroring predicate cannot be pre-evaluated here;
                    // count the row (conservative: over-estimates work)
                    matches!(crate::eval::eval(p, row), Ok(Value::Bool(true)) | Err(_))
                })
            });
            report.recommended_workers =
                estimate.recommended_workers(config.available_workers.max(1));
            report.estimate = Some(estimate);
        }
    }
    (plan, report)
}

/// The filter predicates sitting between the outermost `OrExpand` on the
/// driving path and its driving scan — the rows the expansion actually sees
/// are the ones satisfying all of them.  Collection stops at any operator
/// that changes the row shape (`Project`, `AttachEnv`, a binary node):
/// predicates below such an operator do not apply to raw scan rows and
/// cannot be pre-evaluated against them.
fn filters_below_expand(plan: &PhysicalPlan) -> Vec<&M> {
    fn below<'p>(plan: &'p PhysicalPlan, seen_expand: bool, out: &mut Vec<&'p M>) {
        match plan {
            PhysicalPlan::Filter { predicate, input } => {
                if seen_expand {
                    out.push(predicate);
                }
                below(input, seen_expand, out);
            }
            PhysicalPlan::OrExpand { input, .. } => below(input, true, out),
            // before the expand, keep descending toward it; after it, any
            // row-shape change invalidates raw-row pre-evaluation
            PhysicalPlan::Project { input, .. }
            | PhysicalPlan::AttachEnv { input, .. }
            | PhysicalPlan::Flatten { input } => {
                if seen_expand {
                    out.clear();
                } else {
                    below(input, seen_expand, out);
                }
            }
            PhysicalPlan::Cartesian { left, .. }
            | PhysicalPlan::Join { left, .. }
            | PhysicalPlan::Union { left, .. } => {
                if seen_expand {
                    out.clear();
                } else {
                    below(left, seen_expand, out);
                }
            }
            PhysicalPlan::Scan(_) => {}
        }
    }
    let mut out = Vec::new();
    below(plan, false, &mut out);
    out
}

fn contains_or_expand(plan: &PhysicalPlan) -> bool {
    match plan {
        PhysicalPlan::Scan(_) => false,
        PhysicalPlan::OrExpand { .. } => true,
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::AttachEnv { input, .. }
        | PhysicalPlan::Flatten { input } => contains_or_expand(input),
        PhysicalPlan::Cartesian { left, right }
        | PhysicalPlan::Join { left, right, .. }
        | PhysicalPlan::Union { left, right } => {
            contains_or_expand(left) || contains_or_expand(right)
        }
    }
}

fn push_below_expand(
    plan: PhysicalPlan,
    config: &ExpandPlannerConfig,
    report: &mut ExpandPlanReport,
) -> PhysicalPlan {
    // children first, so a chain of operators above an expand cascades down
    let plan = match plan {
        PhysicalPlan::Filter { predicate, input } => PhysicalPlan::Filter {
            predicate,
            input: Box::new(push_below_expand(*input, config, report)),
        },
        PhysicalPlan::Project { f, input } => PhysicalPlan::Project {
            f,
            input: Box::new(push_below_expand(*input, config, report)),
        },
        PhysicalPlan::AttachEnv { setup, input } => PhysicalPlan::AttachEnv {
            setup,
            input: Box::new(push_below_expand(*input, config, report)),
        },
        PhysicalPlan::OrExpand {
            budget,
            dedup,
            input,
        } => PhysicalPlan::OrExpand {
            budget,
            dedup,
            input: Box::new(push_below_expand(*input, config, report)),
        },
        PhysicalPlan::Cartesian { left, right } => PhysicalPlan::Cartesian {
            left: Box::new(push_below_expand(*left, config, report)),
            right: Box::new(push_below_expand(*right, config, report)),
        },
        PhysicalPlan::Union { left, right } => PhysicalPlan::Union {
            left: Box::new(push_below_expand(*left, config, report)),
            right: Box::new(push_below_expand(*right, config, report)),
        },
        PhysicalPlan::Flatten { input } => PhysicalPlan::Flatten {
            input: Box::new(push_below_expand(*input, config, report)),
        },
        PhysicalPlan::Join {
            predicate,
            left,
            right,
        } => PhysicalPlan::Join {
            predicate,
            left: Box::new(push_below_expand(*left, config, report)),
            right: Box::new(push_below_expand(*right, config, report)),
        },
        leaf @ PhysicalPlan::Scan(_) => leaf,
    };
    match plan {
        PhysicalPlan::Filter { predicate, input } => match *input {
            PhysicalPlan::OrExpand {
                budget,
                dedup,
                input: inner,
            } if commutes_below(&predicate, &inner, config) => {
                report.pushed_filters += 1;
                let pushed = PhysicalPlan::OrExpand {
                    budget,
                    dedup,
                    input: Box::new(PhysicalPlan::Filter {
                        predicate,
                        input: inner,
                    }),
                };
                // the expand's new input may expose further pushdowns
                push_below_expand(pushed, config, report)
            }
            other => PhysicalPlan::Filter {
                predicate,
                input: Box::new(other),
            },
        },
        PhysicalPlan::Project { f, input } => match *input {
            PhysicalPlan::OrExpand {
                budget,
                dedup,
                input: inner,
            } if config.assume_consistent && commutes_below(&f, &inner, config) => {
                report.pushed_projects += 1;
                let pushed = PhysicalPlan::OrExpand {
                    budget,
                    dedup,
                    input: Box::new(PhysicalPlan::Project { f, input: inner }),
                };
                push_below_expand(pushed, config, report)
            }
            other => PhysicalPlan::Project {
                f,
                input: Box::new(other),
            },
        },
        other => other,
    }
}

/// Can `m` run below the `OrExpand` whose input is `inner`?  Requires the
/// input row type to be known and the Theorem 5.1 conditions to hold for
/// `m` at that (unexpanded) type.
fn commutes_below(m: &M, inner: &PhysicalPlan, config: &ExpandPlannerConfig) -> bool {
    match output_row_type(inner, &config.row_types) {
        Some(ty) => commutes_with_or_alpha(m, &ty),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::morphism::Prim;
    use or_object::generate::Generator;
    use or_object::Value;

    #[test]
    fn identity_compositions_collapse() {
        let m = M::Id.then(M::Proj1).then(M::Id);
        assert_eq!(simplified(&m), M::Proj1);
    }

    #[test]
    fn projection_of_pair_simplifies() {
        let m = M::pair(M::Proj2, M::Proj1).then(M::Proj1);
        assert_eq!(simplified(&m), M::Proj2);
    }

    #[test]
    fn monad_laws_collapse_eta_mu() {
        assert_eq!(simplified(&M::Eta.then(M::Mu)), M::Id);
        assert_eq!(simplified(&M::map(M::Eta).then(M::Mu)), M::Id);
        assert_eq!(simplified(&M::OrEta.then(M::OrMu)), M::Id);
        assert_eq!(simplified(&M::ormap(M::OrEta).then(M::OrMu)), M::Id);
    }

    #[test]
    fn map_fusion() {
        let m = M::map(M::Proj1).then(M::map(M::Eta));
        let s = simplified(&m);
        assert_eq!(s, M::map(M::Proj1.then(M::Eta)));
        assert!(s.size() <= m.size());
    }

    #[test]
    fn cond_with_constant_predicate_selects_branch() {
        let m = M::cond(M::constant(Value::Bool(true)), M::Proj1, M::Proj2);
        assert_eq!(simplified(&m), M::Proj1);
        let m = M::cond(M::constant(Value::Bool(false)), M::Proj1, M::Proj2);
        assert_eq!(simplified(&m), M::Proj2);
    }

    #[test]
    fn cond_with_equal_branches_drops_the_test() {
        let m = M::cond(M::Prim(Prim::Leq), M::Proj1, M::Proj1);
        assert_eq!(simplified(&m), M::Proj1);
    }

    #[test]
    fn alpha_naturality_moves_map_below_alpha() {
        let m = M::Alpha.then(M::ormap(M::map(M::Proj1)));
        let s = simplified(&m);
        assert_eq!(s, M::map(M::ormap(M::Proj1)).then(M::Alpha));
    }

    #[test]
    fn simplification_preserves_semantics_on_samples() {
        let samples: Vec<(M, Value)> = vec![
            (
                M::map(M::Proj1).then(M::map(M::Eta)).then(M::Mu),
                Value::set([
                    Value::pair(Value::Int(1), Value::Int(2)),
                    Value::pair(Value::Int(3), Value::Int(4)),
                ]),
            ),
            (
                M::pair(M::Proj2, M::Proj1)
                    .then(M::Proj1)
                    .then(M::OrEta)
                    .then(M::ormap(M::Id)),
                Value::pair(Value::Int(1), Value::Int(2)),
            ),
            (
                M::Alpha.then(M::ormap(M::map(M::Id))),
                Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]),
            ),
            (
                crate::derived::or_select(
                    M::pair(M::Id, M::constant(Value::Int(2))).then(M::Prim(Prim::Leq)),
                ),
                Value::int_orset([1, 2, 3]),
            ),
        ];
        for (m, v) in samples {
            let s = simplified(&m);
            assert_eq!(
                eval(&m, &v).unwrap(),
                eval(&s, &v).unwrap(),
                "simplification changed the meaning of {m}"
            );
            assert!(s.size() <= m.size());
        }
    }

    #[test]
    fn optimizer_reports_statistics() {
        let m = M::Id.then(M::map(M::Id)).then(M::Id);
        let (s, stats) = optimize(&m);
        assert_eq!(s, M::Id);
        assert!(stats.rewrites >= 2);
        assert!(stats.after < stats.before);
    }

    #[test]
    fn lower_produces_filter_project_pipelines() {
        let cheap = M::pair(M::Id, M::constant(Value::Int(10))).then(M::Prim(Prim::Leq));
        let query = crate::derived::select(cheap).then(M::map(M::Eta));
        let plan = lower(&query).unwrap();
        let rendered = plan.to_string();
        assert!(rendered.contains("Filter"), "plan: {rendered}");
        assert!(rendered.contains("Project"), "plan: {rendered}");
        assert!(rendered.contains("Scan(#0)"), "plan: {rendered}");
    }

    #[test]
    fn lower_recognizes_or_expansion() {
        let query = M::map(M::Normalize.then(M::OrToSet)).then(M::Mu);
        let plan = lower(&query).unwrap();
        assert!(plan.to_string().contains("OrExpand"));
    }

    #[test]
    fn lower_recognizes_union_of_pipelines() {
        // ∪ ∘ ⟨map(π₁), map(π₂)⟩ — union of two projections of the input
        let query = M::pair(M::map(M::Proj1), M::map(M::Proj2)).then(M::Union);
        let plan = lower(&query).unwrap();
        let rendered = plan.to_string();
        assert!(rendered.contains("Union"), "plan: {rendered}");
        assert_eq!(plan.input_arity(), 1);
        // semantics check against the interpreter
        let v = Value::set([
            Value::pair(Value::Int(1), Value::Int(10)),
            Value::pair(Value::Int(2), Value::Int(20)),
        ]);
        let expected = eval(&query, &v).unwrap();
        assert_eq!(expected, Value::int_set([1, 2, 10, 20]));
    }

    #[test]
    fn lower_recognizes_row_wise_flattening() {
        // a bare μ: {{t}} → {t}
        let plan = lower(&M::Mu).unwrap();
        assert!(plan.to_string().contains("Flatten"));
        // μ after a projection (the dependent-generator shape)
        let query = M::map(M::Proj2).then(M::Mu);
        let plan = lower(&query).unwrap();
        let rendered = plan.to_string();
        assert!(rendered.contains("Flatten"), "plan: {rendered}");
        assert!(rendered.contains("Project"), "plan: {rendered}");
    }

    #[test]
    fn lower_rejects_the_or_monad_fragment() {
        assert!(lower(&M::Normalize).is_err());
        assert!(lower(&M::ormap(M::Id).then(M::OrMu)).is_err());
        assert!(lower(&M::Powerset).is_err());
    }

    #[test]
    fn lower_rejects_a_bare_leading_rho2() {
        // ρ₂ with no setup prefix would require the engine's set-of-rows
        // input to be a pair; it must be a LowerError, not a silent no-op.
        assert!(lower(&M::Rho2).is_err());
        assert!(lower(&M::Rho2.then(M::map(M::Proj2))).is_err());
    }

    #[test]
    fn lower_handles_the_comprehension_compilers_env_scaffolding() {
        // the shape compile_query emits for `{ x | x <- db }`:
        // map(π₂) ∘ μ ∘ map(ρ₂ ∘ ⟨id, π₂⟩) ∘ η ∘ ⟨!, id⟩
        let query = M::pair(M::Bang, M::Id)
            .then(M::Eta)
            .then(M::map(M::pair(M::Id, M::Proj2).then(M::Rho2)))
            .then(M::Mu)
            .then(M::map(M::Proj2));
        let plan = lower(&query).unwrap();
        assert!(plan.to_string().contains("AttachEnv"), "plan: {plan}");
    }

    fn fanout_row_type() -> or_object::Type {
        use or_object::Type;
        Type::prod(
            Type::Int,
            Type::prod(Type::orset(Type::Int), Type::orset(Type::Int)),
        )
    }

    fn id_predicate(limit: i64) -> M {
        M::Proj1
            .then(M::pair(M::Id, M::constant(Value::Int(limit))))
            .then(M::Prim(Prim::Leq))
    }

    #[test]
    fn planner_pushes_orfree_filters_below_expand() {
        let plan = PhysicalPlan::scan(0).or_expand().filter(id_predicate(3));
        let config = ExpandPlannerConfig::default().with_row_type(fanout_row_type());
        let (optimized, report) = optimize_expansion(&plan, &[], &config);
        assert_eq!(report.pushed_filters, 1);
        let rendered = optimized.to_string();
        // OrExpand is now the root, the filter sits below it
        assert!(
            rendered.trim_start().starts_with("OrExpand"),
            "plan: {rendered}"
        );
    }

    #[test]
    fn planner_leaves_orset_reading_filters_above_expand() {
        // structural equality against an or-set constant reads or-set
        // structure: the paper's canonical non-preserved operation
        let orset_eq = M::Proj2
            .then(M::Proj1)
            .then(M::pair(M::Id, M::constant(Value::int_orset([1, 2]))))
            .then(M::Eq);
        let plan = PhysicalPlan::scan(0).or_expand().filter(orset_eq);
        let config = ExpandPlannerConfig::default().with_row_type(fanout_row_type());
        let (optimized, report) = optimize_expansion(&plan, &[], &config);
        assert_eq!(report.pushed_filters, 0);
        assert_eq!(optimized, plan);
    }

    #[test]
    fn planner_needs_a_row_type_to_rewrite() {
        let plan = PhysicalPlan::scan(0).or_expand().filter(id_predicate(3));
        let (optimized, report) = optimize_expansion(&plan, &[], &ExpandPlannerConfig::default());
        assert_eq!(report.pushed_filters, 0);
        assert_eq!(optimized, plan);
    }

    #[test]
    fn planner_pushes_projections_only_for_consistent_inputs() {
        let plan = PhysicalPlan::scan(0).or_expand().project(M::Proj1);
        let config = ExpandPlannerConfig::default().with_row_type(fanout_row_type());
        let (kept, report) = optimize_expansion(&plan, &[], &config);
        assert_eq!(report.pushed_projects, 0);
        assert_eq!(kept, plan);
        let config = config.with_consistent_inputs();
        let (pushed, report) = optimize_expansion(&plan, &[], &config);
        assert_eq!(report.pushed_projects, 1);
        assert!(pushed.to_string().trim_start().starts_with("OrExpand"));
    }

    #[test]
    fn pushed_plans_compute_the_same_worlds() {
        use crate::normalize::normalize_value;
        // reference semantics via the interpreter: expand-then-filter
        let rows: Vec<Value> = (0..6)
            .map(|i| {
                Value::pair(
                    Value::Int(i),
                    Value::pair(
                        Value::int_orset([i, i + 1, i + 2]),
                        Value::int_orset([10 * i, 10 * i + 1]),
                    ),
                )
            })
            .collect();
        let keep = |row: &Value| matches!(row.as_pair(), Some((Value::Int(i), _)) if *i <= 3);
        // worlds of the filtered rows == filtered worlds of all rows
        let mut expand_then_filter: Vec<Value> = Vec::new();
        let mut filter_then_expand: Vec<Value> = Vec::new();
        for row in &rows {
            if let Value::OrSet(worlds) = normalize_value(row) {
                expand_then_filter.extend(worlds.iter().filter(|w| keep(w)).cloned());
                if keep(row) {
                    filter_then_expand.extend(worlds);
                }
            }
        }
        expand_then_filter.sort();
        expand_then_filter.dedup();
        filter_then_expand.sort();
        filter_then_expand.dedup();
        assert_eq!(expand_then_filter, filter_then_expand);
    }

    #[test]
    fn planner_reports_a_cardinality_estimate() {
        let rows: Vec<Value> = (0..32)
            .map(|i| {
                Value::pair(
                    Value::Int(i),
                    Value::pair(Value::int_orset([0, 1, 2]), Value::int_orset([3, 4])),
                )
            })
            .collect();
        let plan = PhysicalPlan::scan(0).or_expand();
        let config = ExpandPlannerConfig::default()
            .with_row_type(fanout_row_type())
            .with_available_workers(8);
        let (_, report) = optimize_expansion(&plan, &[&rows], &config);
        let est = report.estimate.expect("estimate for expanding plan");
        assert_eq!(est.total_denotations, 32 * 6);
        assert!(report.recommended_workers >= 1);
        // tiny expansion: not worth a second worker
        assert_eq!(report.recommended_workers, 1);
    }

    #[test]
    fn estimate_accounts_for_pushed_filters() {
        let rows: Vec<Value> = (0..40)
            .map(|i| {
                Value::pair(
                    Value::Int(i),
                    Value::pair(Value::int_orset([0, 1, 2]), Value::int_orset([3, 4])),
                )
            })
            .collect();
        // filter keeps ids 0..=9: selectivity 25%
        let plan = PhysicalPlan::scan(0).or_expand().filter(id_predicate(9));
        let config = ExpandPlannerConfig::default().with_row_type(fanout_row_type());
        let (optimized, report) = optimize_expansion(&plan, &[&rows], &config);
        assert_eq!(report.pushed_filters, 1);
        assert_eq!(filters_below_expand(&optimized).len(), 1);
        let est = report.estimate.expect("estimate");
        // only the 10 surviving rows (6 worlds each) count toward the work
        assert_eq!(est.total_denotations, 10 * 6);
        // the same plan without the filter estimates the full expansion
        let bare = PhysicalPlan::scan(0).or_expand();
        let (_, full) = optimize_expansion(&bare, &[&rows], &config);
        assert_eq!(full.estimate.expect("estimate").total_denotations, 40 * 6);
    }

    #[test]
    fn expanded_normalize_morphisms_shrink_but_keep_meaning() {
        let t = or_object::Type::prod(
            or_object::Type::set(or_object::Type::orset(or_object::Type::Int)),
            or_object::Type::orset(or_object::Type::Int),
        );
        let m = crate::expand::expand_normalize(&t).unwrap();
        let s = simplified(&m);
        assert!(s.size() <= m.size());
        let mut gen = Generator::with_seed(5);
        for _ in 0..10 {
            let v = gen.object_of(&t);
            assert_eq!(eval(&m, &v).unwrap(), eval(&s, &v).unwrap());
        }
    }
}
