//! A rewrite-based simplifier for or-NRA morphisms.
//!
//! The conclusion of the paper points out that "every diagram in the proof of
//! Theorem 4.2 gives rise to a new equation" and that the monad equations of
//! the underlying NRA form an equational theory useful for optimization.
//! This module implements a conservative simplifier over that theory:
//!
//! * category laws: `id ∘ f = f`, `f ∘ id = f`, associativity-agnostic
//!   traversal;
//! * product laws: `π₁ ∘ ⟨f, g⟩ = f`, `π₂ ∘ ⟨f, g⟩ = g`;
//! * monad laws (for both the set and the or-set monad):
//!   `μ ∘ η = id`, `μ ∘ map(η) = id`, `map(id) = id`,
//!   `map(f) ∘ map(g) = map(f ∘ g)`, `map(f) ∘ η = η ∘ f`,
//!   `μ ∘ map(map(f)) = map(f) ∘ μ`;
//! * coherence-diagram equations from Theorem 4.2:
//!   `ormap(ormap(f)) ∘ orμ = orμ ∘ ormap(ormap(... ))` is subsumed by the
//!   monad laws; the `α`-naturality equation
//!   `ormap(map(f)) ∘ α = α ∘ map(ormap(f))` is applied in the direction that
//!   moves `map` below `α` (mapping before combining is never more expensive);
//! * conditional simplifications: constant predicates select a branch,
//!   identical branches drop the test;
//! * `! ∘ f = !` (every morphism is total), `cond(p, f, f) = f`.
//!
//! Every rule preserves semantics for *well-typed* applications; the
//! simplifier never turns a failing evaluation into a succeeding one on the
//! original's domain because all rules are equations of the algebra.

use or_object::Value;

use crate::morphism::Morphism as M;
use crate::physical::{LowerError, PhysicalPlan};

/// Result statistics of a simplification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Size (constructor count) before.
    pub before: usize,
    /// Size after.
    pub after: usize,
    /// Number of rule applications.
    pub rewrites: usize,
}

/// Simplify a morphism, returning the simplified form and statistics.
pub fn optimize(m: &M) -> (M, OptimizeStats) {
    let before = m.size();
    let mut rewrites = 0;
    let out = simplify(m, &mut rewrites);
    let stats = OptimizeStats {
        before,
        after: out.size(),
        rewrites,
    };
    (out, stats)
}

/// Simplify a morphism (convenience wrapper discarding statistics).
pub fn simplified(m: &M) -> M {
    optimize(m).0
}

fn simplify(m: &M, rewrites: &mut usize) -> M {
    // bottom-up: simplify children first, then apply root rules to fixpoint
    let rebuilt = match m {
        M::Compose(f, g) => M::compose(simplify(f, rewrites), simplify(g, rewrites)),
        M::PairWith(f, g) => M::pair(simplify(f, rewrites), simplify(g, rewrites)),
        M::Cond(p, f, g) => M::cond(
            simplify(p, rewrites),
            simplify(f, rewrites),
            simplify(g, rewrites),
        ),
        M::Map(f) => M::map(simplify(f, rewrites)),
        M::OrMap(f) => M::ormap(simplify(f, rewrites)),
        other => other.clone(),
    };
    let mut cur = rebuilt;
    loop {
        match rewrite_root(&cur) {
            Some(next) => {
                *rewrites += 1;
                // children of the new root may expose further redexes
                cur = match &next {
                    M::Compose(f, g) => M::compose(simplify(f, rewrites), simplify(g, rewrites)),
                    M::Map(f) => M::map(simplify(f, rewrites)),
                    M::OrMap(f) => M::ormap(simplify(f, rewrites)),
                    M::PairWith(f, g) => M::pair(simplify(f, rewrites), simplify(g, rewrites)),
                    other => other.clone(),
                };
            }
            None => return cur,
        }
    }
}

/// Apply one equation at the root, if any applies.
fn rewrite_root(m: &M) -> Option<M> {
    match m {
        M::Map(inner) if **inner == M::Id => Some(M::Id),
        M::OrMap(inner) if **inner == M::Id => Some(M::Id),
        M::Cond(p, f, g) => {
            if f == g {
                return Some((**f).clone());
            }
            if let M::Compose(c, _) = &**p {
                if let M::Const(Value::Bool(b)) = &**c {
                    return Some(if *b { (**f).clone() } else { (**g).clone() });
                }
            }
            if let M::Const(Value::Bool(b)) = &**p {
                return Some(if *b { (**f).clone() } else { (**g).clone() });
            }
            None
        }
        M::Compose(f, g) => rewrite_compose(f, g),
        _ => None,
    }
}

fn rewrite_compose(f: &M, g: &M) -> Option<M> {
    // f ∘ g
    match (f, g) {
        (M::Id, _) => Some(g.clone()),
        (_, M::Id) => Some(f.clone()),
        // ! ∘ g = !   (all morphisms are total functions)
        (M::Bang, _) => Some(M::Bang),
        // Kc ∘ g  stays as is (g might fail on ill-typed input only; under
        // well-typedness it could be dropped, but we keep it conservative).

        // projections of a pair
        (M::Proj1, M::PairWith(a, _)) => Some((**a).clone()),
        (M::Proj2, M::PairWith(_, b)) => Some((**b).clone()),
        // (f1 ∘ f2) ∘ g — reassociate to expose adjacent redexes
        (M::Compose(f1, f2), _) => rewrite_compose(f2, g).map(|r| M::compose((**f1).clone(), r)),
        // monad laws — set monad
        (M::Mu, M::Eta) => Some(M::Id),
        (M::Mu, M::Map(inner)) if **inner == M::Eta => Some(M::Id),
        (M::Map(mf), M::Map(mg)) => Some(M::map(M::compose((**mf).clone(), (**mg).clone()))),
        (M::Map(mf), M::Eta) => Some(M::compose(M::Eta, (**mf).clone())),
        (M::Mu, M::Map(inner)) => {
            // μ ∘ map(map(f)) = map(f) ∘ μ
            if let M::Map(deep) = &**inner {
                Some(M::compose(M::map((**deep).clone()), M::Mu))
            } else {
                None
            }
        }
        // monad laws — or-set monad
        (M::OrMu, M::OrEta) => Some(M::Id),
        (M::OrMu, M::OrMap(inner)) if **inner == M::OrEta => Some(M::Id),
        (M::OrMap(mf), M::OrMap(mg)) => Some(M::ormap(M::compose((**mf).clone(), (**mg).clone()))),
        (M::OrMap(mf), M::OrEta) => Some(M::compose(M::OrEta, (**mf).clone())),
        (M::OrMu, M::OrMap(inner)) => {
            if let M::OrMap(deep) = &**inner {
                Some(M::compose(M::ormap((**deep).clone()), M::OrMu))
            } else {
                None
            }
        }
        // α-naturality (a Theorem 4.2 diagram): ormap(map(f)) ∘ α = α ∘ map(ormap(f))
        (M::OrMap(inner), M::Alpha) => {
            if let M::Map(deep) = &**inner {
                Some(M::compose(M::Alpha, M::map(M::ormap((**deep).clone()))))
            } else {
                None
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// lowering to physical plans
// ---------------------------------------------------------------------------

/// Lower a morphism `{s} → {t}` into a [`PhysicalPlan`] over a single scan
/// (input slot 0).
///
/// The morphism is first [`simplified`] (the monad laws collapse the
/// comprehension compiler's `μ ∘ map(…) ∘ η` scaffolding), then its
/// composition chain is matched against the **set-pipeline fragment**:
///
/// * `id` — the bare scan;
/// * `map(f)` — [`PhysicalPlan::Project`];
/// * `μ ∘ map(cond(p, η, K{} ∘ !))` (the `select(p)` shape) —
///   [`PhysicalPlan::Filter`];
/// * `μ ∘ map(ortoset ∘ normalize)` (per-row α-expansion) —
///   [`PhysicalPlan::OrExpand`];
/// * a leading `ρ₂ ∘ e` prefix, where `e` builds an `(env, {rows})` pair
///   from the input set (the OrQL environment-tuple translation) —
///   [`PhysicalPlan::AttachEnv`].
///
/// Anything outside this fragment (or-monad pipelines, whole-relation
/// `normalize`, multi-generator flattening) returns a [`LowerError`]; callers
/// such as the OrQL session fall back to the tree-walking interpreter.
/// Binary operators (`Cartesian`, `Join`) are built directly through the
/// [`PhysicalPlan`] builder API, since a morphism's single input cannot
/// reference two relations.
pub fn lower(m: &M) -> Result<PhysicalPlan, LowerError> {
    let simplified = simplified(m);
    let mut stages = Vec::new();
    flatten_into(&simplified, &mut stages);
    // `stages` is now in application order (first applied first).
    let mut plan = PhysicalPlan::scan(0);
    let mut i = 0;
    // A leading prefix of row-building stages ending in ρ₂ becomes
    // AttachEnv: `ρ₂ ∘ e` streams the set component of `e`'s output paired
    // with its environment component.  A bare leading ρ₂ (no prefix) is NOT
    // lowerable: it would require the engine's set-of-rows input to itself
    // be a pair, which is outside the `{rows} → {t}` contract.
    if let Some(rho_at) = leading_rho2_prefix(&stages) {
        let setup = compose_stages(&stages[..rho_at]);
        plan = plan.attach_env(setup);
        i = rho_at + 1;
    } else if let Some((setup, consumed)) = match_eta_scaffold(&stages) {
        // The unsimplified comprehension shape
        // `μ ∘ map(ρ₂ ∘ ⟨a, b⟩ ∘ d) ∘ η ∘ p`: the η wraps the whole input,
        // the map body splits it into (env, source-set), and the μ unwraps —
        // semantically the same AttachEnv.
        plan = plan.attach_env(setup);
        i = consumed;
    }
    while i < stages.len() {
        let stage = stages[i];
        let next = stages.get(i + 1).copied();
        match stage {
            M::Id => {
                i += 1;
            }
            // η directly followed by μ cancels (the monad law μ ∘ η = id);
            // the comprehension compiler's scaffolding reaches `lower` in
            // this shape when the simplifier's local rewrites cannot see
            // across the composition's association.
            M::Eta if next == Some(&M::Mu) => {
                i += 2;
            }
            M::Map(body) => {
                // two-stage shapes consume the following μ
                if next == Some(&M::Mu) {
                    if let Some(p) = as_select_body(body) {
                        plan = plan.filter(p.clone());
                        i += 2;
                        continue;
                    }
                    if is_or_expand_body(body) {
                        plan = PhysicalPlan::OrExpand {
                            budget: None,
                            dedup: true,
                            input: Box::new(plan),
                        };
                        i += 2;
                        continue;
                    }
                }
                plan = plan.project((**body).clone());
                i += 1;
            }
            other => {
                return Err(LowerError {
                    unsupported: other.to_string(),
                })
            }
        }
    }
    Ok(plan)
}

/// Flatten a composition tree into application order.
fn flatten_into<'m>(m: &'m M, out: &mut Vec<&'m M>) {
    match m {
        M::Compose(f, g) => {
            flatten_into(g, out);
            flatten_into(f, out);
        }
        other => out.push(other),
    }
}

/// If the stage list starts with zero or more non-set-operator stages
/// followed by `ρ₂`, return the index of the `ρ₂`.
fn leading_rho2_prefix(stages: &[&M]) -> Option<usize> {
    let rho_at = stages.iter().position(|s| matches!(s, M::Rho2))?;
    // A bare leading ρ₂ has no setup morphism to build the (env, {rows})
    // pair from the input set — it is outside the lowerable fragment.
    if rho_at == 0 {
        return None;
    }
    let prefix_ok = stages[..rho_at]
        .iter()
        .all(|s| !matches!(s, M::Map(_) | M::Mu | M::Eta | M::OrMap(_) | M::OrMu));
    if prefix_ok {
        Some(rho_at)
    } else {
        None
    }
}

/// Match a leading `μ ∘ map(ρ₂ ∘ ⟨a, b⟩ ∘ d) ∘ η ∘ p` scaffold (stage order
/// `p…, η, map(…), μ`) and return the equivalent AttachEnv setup morphism
/// `⟨a ∘ d ∘ p, b ∘ d ∘ p⟩` plus the number of stages consumed.
fn match_eta_scaffold(stages: &[&M]) -> Option<(M, usize)> {
    let eta_at = stages.iter().position(|s| {
        matches!(
            s,
            M::Map(_) | M::Mu | M::Eta | M::Rho2 | M::OrMap(_) | M::OrMu
        )
    })?;
    if !matches!(stages[eta_at], M::Eta) {
        return None;
    }
    let body = match stages.get(eta_at + 1) {
        Some(M::Map(body)) => body,
        _ => return None,
    };
    if !matches!(stages.get(eta_at + 2), Some(M::Mu)) {
        return None;
    }
    let mut body_stages = Vec::new();
    flatten_into(body, &mut body_stages);
    let (rho, rest) = body_stages.split_last()?;
    if !matches!(rho, M::Rho2) {
        return None;
    }
    let (pairw, d_stages) = rest.split_last()?;
    let M::PairWith(a, b) = pairw else {
        return None;
    };
    // p then d, then split into the pair's components
    let mut p_stages: Vec<&M> = stages[..eta_at].to_vec();
    p_stages.extend(d_stages.iter().copied());
    let p = compose_stages(&p_stages);
    let setup = M::pair(p.clone().then((**a).clone()), p.then((**b).clone()));
    Some((setup, eta_at + 3))
}

/// Re-compose a stage slice (application order) into a single morphism.
fn compose_stages(stages: &[&M]) -> M {
    let mut it = stages.iter();
    let first = it.next().map(|m| (*m).clone()).unwrap_or(M::Id);
    it.fold(first, |acc, stage| acc.then((*stage).clone()))
}

/// Match `cond(p, η, K{} ∘ !)` — the body of the `select` encoding — and
/// return the predicate.
fn as_select_body(body: &M) -> Option<&M> {
    if let M::Cond(p, then_branch, else_branch) = body {
        if **then_branch == M::Eta && is_empty_set_constant(else_branch) {
            return Some(p);
        }
    }
    None
}

/// Match `K{} ∘ !` (and bare `K{}`).
fn is_empty_set_constant(m: &M) -> bool {
    match m {
        M::KEmptySet => true,
        M::Compose(f, g) => **f == M::KEmptySet && **g == M::Bang,
        _ => false,
    }
}

/// Match `ortoset ∘ normalize` — the per-row α-expansion body.
fn is_or_expand_body(body: &M) -> bool {
    matches!(body, M::Compose(f, g) if **f == M::OrToSet && **g == M::Normalize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::morphism::Prim;
    use or_object::generate::Generator;
    use or_object::Value;

    #[test]
    fn identity_compositions_collapse() {
        let m = M::Id.then(M::Proj1).then(M::Id);
        assert_eq!(simplified(&m), M::Proj1);
    }

    #[test]
    fn projection_of_pair_simplifies() {
        let m = M::pair(M::Proj2, M::Proj1).then(M::Proj1);
        assert_eq!(simplified(&m), M::Proj2);
    }

    #[test]
    fn monad_laws_collapse_eta_mu() {
        assert_eq!(simplified(&M::Eta.then(M::Mu)), M::Id);
        assert_eq!(simplified(&M::map(M::Eta).then(M::Mu)), M::Id);
        assert_eq!(simplified(&M::OrEta.then(M::OrMu)), M::Id);
        assert_eq!(simplified(&M::ormap(M::OrEta).then(M::OrMu)), M::Id);
    }

    #[test]
    fn map_fusion() {
        let m = M::map(M::Proj1).then(M::map(M::Eta));
        let s = simplified(&m);
        assert_eq!(s, M::map(M::Proj1.then(M::Eta)));
        assert!(s.size() <= m.size());
    }

    #[test]
    fn cond_with_constant_predicate_selects_branch() {
        let m = M::cond(M::constant(Value::Bool(true)), M::Proj1, M::Proj2);
        assert_eq!(simplified(&m), M::Proj1);
        let m = M::cond(M::constant(Value::Bool(false)), M::Proj1, M::Proj2);
        assert_eq!(simplified(&m), M::Proj2);
    }

    #[test]
    fn cond_with_equal_branches_drops_the_test() {
        let m = M::cond(M::Prim(Prim::Leq), M::Proj1, M::Proj1);
        assert_eq!(simplified(&m), M::Proj1);
    }

    #[test]
    fn alpha_naturality_moves_map_below_alpha() {
        let m = M::Alpha.then(M::ormap(M::map(M::Proj1)));
        let s = simplified(&m);
        assert_eq!(s, M::map(M::ormap(M::Proj1)).then(M::Alpha));
    }

    #[test]
    fn simplification_preserves_semantics_on_samples() {
        let samples: Vec<(M, Value)> = vec![
            (
                M::map(M::Proj1).then(M::map(M::Eta)).then(M::Mu),
                Value::set([
                    Value::pair(Value::Int(1), Value::Int(2)),
                    Value::pair(Value::Int(3), Value::Int(4)),
                ]),
            ),
            (
                M::pair(M::Proj2, M::Proj1)
                    .then(M::Proj1)
                    .then(M::OrEta)
                    .then(M::ormap(M::Id)),
                Value::pair(Value::Int(1), Value::Int(2)),
            ),
            (
                M::Alpha.then(M::ormap(M::map(M::Id))),
                Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]),
            ),
            (
                crate::derived::or_select(
                    M::pair(M::Id, M::constant(Value::Int(2))).then(M::Prim(Prim::Leq)),
                ),
                Value::int_orset([1, 2, 3]),
            ),
        ];
        for (m, v) in samples {
            let s = simplified(&m);
            assert_eq!(
                eval(&m, &v).unwrap(),
                eval(&s, &v).unwrap(),
                "simplification changed the meaning of {m}"
            );
            assert!(s.size() <= m.size());
        }
    }

    #[test]
    fn optimizer_reports_statistics() {
        let m = M::Id.then(M::map(M::Id)).then(M::Id);
        let (s, stats) = optimize(&m);
        assert_eq!(s, M::Id);
        assert!(stats.rewrites >= 2);
        assert!(stats.after < stats.before);
    }

    #[test]
    fn lower_produces_filter_project_pipelines() {
        let cheap = M::pair(M::Id, M::constant(Value::Int(10))).then(M::Prim(Prim::Leq));
        let query = crate::derived::select(cheap).then(M::map(M::Eta));
        let plan = lower(&query).unwrap();
        let rendered = plan.to_string();
        assert!(rendered.contains("Filter"), "plan: {rendered}");
        assert!(rendered.contains("Project"), "plan: {rendered}");
        assert!(rendered.contains("Scan(#0)"), "plan: {rendered}");
    }

    #[test]
    fn lower_recognizes_or_expansion() {
        let query = M::map(M::Normalize.then(M::OrToSet)).then(M::Mu);
        let plan = lower(&query).unwrap();
        assert!(plan.to_string().contains("OrExpand"));
    }

    #[test]
    fn lower_rejects_the_or_monad_fragment() {
        assert!(lower(&M::Normalize).is_err());
        assert!(lower(&M::ormap(M::Id).then(M::OrMu)).is_err());
        assert!(lower(&M::Powerset).is_err());
    }

    #[test]
    fn lower_rejects_a_bare_leading_rho2() {
        // ρ₂ with no setup prefix would require the engine's set-of-rows
        // input to be a pair; it must be a LowerError, not a silent no-op.
        assert!(lower(&M::Rho2).is_err());
        assert!(lower(&M::Rho2.then(M::map(M::Proj2))).is_err());
    }

    #[test]
    fn lower_handles_the_comprehension_compilers_env_scaffolding() {
        // the shape compile_query emits for `{ x | x <- db }`:
        // map(π₂) ∘ μ ∘ map(ρ₂ ∘ ⟨id, π₂⟩) ∘ η ∘ ⟨!, id⟩
        let query = M::pair(M::Bang, M::Id)
            .then(M::Eta)
            .then(M::map(M::pair(M::Id, M::Proj2).then(M::Rho2)))
            .then(M::Mu)
            .then(M::map(M::Proj2));
        let plan = lower(&query).unwrap();
        assert!(plan.to_string().contains("AttachEnv"), "plan: {plan}");
    }

    #[test]
    fn expanded_normalize_morphisms_shrink_but_keep_meaning() {
        let t = or_object::Type::prod(
            or_object::Type::set(or_object::Type::orset(or_object::Type::Int)),
            or_object::Type::orset(or_object::Type::Int),
        );
        let m = crate::expand::expand_normalize(&t).unwrap();
        let s = simplified(&m);
        assert!(s.size() <= m.size());
        let mut gen = Generator::with_seed(5);
        for _ in 0..10 {
            let v = gen.object_of(&t);
            assert_eq!(eval(&m, &v).unwrap(), eval(&s, &v).unwrap());
        }
    }
}
