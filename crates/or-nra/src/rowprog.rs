//! Interned row programs: per-row morphism evaluation over [`InternId`]s.
//!
//! The physical engine's hot paths — filter predicates, projection heads,
//! and join-key extractors — are or-NRA⁺ [`Morphism`]s evaluated once per
//! row.  The tree-walking evaluator ([`crate::eval::eval`]) rebuilds owned
//! [`Value`](or_object::Value) trees at every step: a projection chain `π₂ ∘ π₁` clones two
//! subtrees to return one, and an equality test deep-compares.  When rows
//! are interned, all of that is id arithmetic:
//!
//! * projections read a `Pair` node and return a child id (no clone);
//! * equality is id equality (hash-consing makes it O(1));
//! * constants are **pre-interned at compile time**, so `Kc ∘ !` is a
//!   register move;
//! * constructed results (`⟨f, g⟩`, `η`, arithmetic) intern one node,
//!   which is a hash probe — and a hit whenever the same value was seen
//!   before.
//!
//! [`RowProgram::compile`] translates the morphism fragment the engine's
//! operators evaluate per row into a small instruction tree over ids; the
//! few morphisms outside the fragment (`normalize`, `alpha`, `powerset` —
//! whole-object conceptual operations the engine routes through dedicated
//! operators anyway) compile to an [`Opaque`](RowProgram::Opaque) node that
//! decodes, runs the tree-walking evaluator, and re-interns.  Compilation
//! never fails; opacity is per-node, so a supported pipeline around one
//! opaque step still runs interned.

use or_object::intern::{InternId, Interner, Node};

use crate::error::EvalError;
use crate::eval::eval;
use crate::morphism::{Morphism, Prim};

/// A compiled per-row program over interned rows.
///
/// Programs are built once per query against the query's arena
/// ([`RowProgram::compile`]) and evaluated once per row
/// ([`RowProgram::run`]).  They are plain data (ids into the arena), so a
/// compiled program is freely shared by every worker overlaying the same
/// base arena.
#[derive(Debug, Clone)]
pub enum RowProgram {
    /// The identity.
    Id,
    /// Sequential composition, applied left to right (`Seq([g, f])` is
    /// `f ∘ g`).
    Seq(Vec<RowProgram>),
    /// First projection of a pair node.
    Proj1,
    /// Second projection of a pair node.
    Proj2,
    /// Pair formation `⟨f, g⟩`.
    Pair(Box<RowProgram>, Box<RowProgram>),
    /// A constant, already interned at compile time (covers `Kc`, `!`,
    /// `K{}` and `K<>`).
    Const(InternId),
    /// Structural equality of a pair's components — id equality.
    Eq,
    /// Conditional on a boolean-producing sub-program.
    Cond(Box<RowProgram>, Box<RowProgram>, Box<RowProgram>),
    /// An interpreted primitive (integer/boolean ops, `value_leq`).
    Prim(Prim),
    /// Singleton set `η`.
    Eta,
    /// Set flattening `μ`.
    Mu,
    /// Set map.
    Map(Box<RowProgram>),
    /// Set pairing `ρ₂`.
    Rho2,
    /// Set union over a pair of sets.
    Union,
    /// Or-singleton `orη`.
    OrEta,
    /// Or-flattening `orμ`.
    OrMu,
    /// Or-set map.
    OrMap(Box<RowProgram>),
    /// Or-set pairing `orρ₂`.
    OrRho2,
    /// Or-union over a pair of or-sets.
    OrUnion,
    /// `ortoset : <s> → {s}`.
    OrToSet,
    /// `settoor : {s} → <s>`.
    SetToOr,
    /// Fallback for morphisms outside the interned fragment: decode the
    /// row, run the tree-walking evaluator, re-intern the result.
    Opaque(Box<Morphism>),
}

impl RowProgram {
    /// Compile a morphism into an interned row program against `arena`,
    /// pre-interning every constant.  Total: unsupported constructs become
    /// per-node [`RowProgram::Opaque`] fallbacks.
    pub fn compile(m: &Morphism, arena: &mut Interner) -> RowProgram {
        match m {
            Morphism::Id => RowProgram::Id,
            Morphism::Compose(f, g) => {
                // applied right-to-left: g first
                let mut steps = Vec::new();
                flatten_compose(g, arena, &mut steps);
                flatten_compose(f, arena, &mut steps);
                RowProgram::Seq(steps)
            }
            Morphism::Proj1 => RowProgram::Proj1,
            Morphism::Proj2 => RowProgram::Proj2,
            Morphism::PairWith(f, g) => RowProgram::Pair(
                Box::new(RowProgram::compile(f, arena)),
                Box::new(RowProgram::compile(g, arena)),
            ),
            Morphism::Bang => RowProgram::Const(arena.unit()),
            Morphism::Const(c) => RowProgram::Const(arena.intern(c)),
            Morphism::Eq => RowProgram::Eq,
            Morphism::Cond(p, f, g) => RowProgram::Cond(
                Box::new(RowProgram::compile(p, arena)),
                Box::new(RowProgram::compile(f, arena)),
                Box::new(RowProgram::compile(g, arena)),
            ),
            Morphism::Prim(p) => RowProgram::Prim(*p),
            Morphism::Eta => RowProgram::Eta,
            Morphism::Mu => RowProgram::Mu,
            Morphism::Map(f) => RowProgram::Map(Box::new(RowProgram::compile(f, arena))),
            Morphism::Rho2 => RowProgram::Rho2,
            Morphism::Union => RowProgram::Union,
            Morphism::KEmptySet => RowProgram::Const(arena.set(Vec::new())),
            Morphism::OrEta => RowProgram::OrEta,
            Morphism::OrMu => RowProgram::OrMu,
            Morphism::OrMap(f) => RowProgram::OrMap(Box::new(RowProgram::compile(f, arena))),
            Morphism::OrRho2 => RowProgram::OrRho2,
            Morphism::OrUnion => RowProgram::OrUnion,
            Morphism::KEmptyOrSet => RowProgram::Const(arena.orset(Vec::new())),
            Morphism::OrToSet => RowProgram::OrToSet,
            Morphism::SetToOr => RowProgram::SetToOr,
            // whole-object conceptual operations: rare in per-row position
            // (the engine runs α-expansion through its own operator), so
            // they fall back to decode + eval + re-intern
            Morphism::Alpha | Morphism::Powerset | Morphism::Normalize => {
                RowProgram::Opaque(Box::new(m.clone()))
            }
        }
    }

    /// Does the program avoid the [`RowProgram::Opaque`] fallback
    /// everywhere?  (Then per-row evaluation never materializes a
    /// [`Value`](or_object::Value).)
    pub fn fully_interned(&self) -> bool {
        match self {
            RowProgram::Opaque(_) => false,
            RowProgram::Seq(steps) => steps.iter().all(RowProgram::fully_interned),
            RowProgram::Pair(f, g) => f.fully_interned() && g.fully_interned(),
            RowProgram::Cond(p, f, g) => {
                p.fully_interned() && f.fully_interned() && g.fully_interned()
            }
            RowProgram::Map(f) | RowProgram::OrMap(f) => f.fully_interned(),
            _ => true,
        }
    }

    /// Apply the program to an interned row.
    pub fn run(&self, row: InternId, arena: &mut Interner) -> Result<InternId, EvalError> {
        match self {
            RowProgram::Id => Ok(row),
            RowProgram::Seq(steps) => {
                let mut acc = row;
                for step in steps {
                    acc = step.run(acc, arena)?;
                }
                Ok(acc)
            }
            RowProgram::Proj1 => match arena.node(row) {
                Node::Pair(a, _) => Ok(*a),
                _ => Err(shape("pi1", row, arena)),
            },
            RowProgram::Proj2 => match arena.node(row) {
                Node::Pair(_, b) => Ok(*b),
                _ => Err(shape("pi2", row, arena)),
            },
            RowProgram::Pair(f, g) => {
                let a = f.run(row, arena)?;
                let b = g.run(row, arena)?;
                Ok(arena.pair(a, b))
            }
            RowProgram::Const(id) => Ok(*id),
            RowProgram::Eq => match arena.node(row) {
                // hash-consing makes structural equality id equality
                Node::Pair(a, b) => Ok(arena.bool(a == b)),
                _ => Err(shape("eq", row, arena)),
            },
            RowProgram::Cond(p, f, g) => {
                let test = p.run(row, arena)?;
                match arena.node(test) {
                    Node::Bool(true) => f.run(row, arena),
                    Node::Bool(false) => g.run(row, arena),
                    _ => Err(EvalError::NonBooleanCondition {
                        value: arena.value(test).to_string(),
                    }),
                }
            }
            RowProgram::Prim(p) => run_prim(*p, row, arena),
            RowProgram::Eta => Ok(arena.set(vec![row])),
            RowProgram::Mu => {
                let items = collection(row, arena, CollKind::Set, "mu")?;
                let mut out = Vec::new();
                for id in items {
                    match arena.node(id) {
                        Node::Set(inner) => out.extend(inner.iter().copied()),
                        _ => return Err(shape("mu", id, arena)),
                    }
                }
                Ok(arena.set(out))
            }
            RowProgram::Map(f) => {
                let items = collection(row, arena, CollKind::Set, "map")?;
                let mut out = Vec::with_capacity(items.len());
                for id in items {
                    out.push(f.run(id, arena)?);
                }
                Ok(arena.set(out))
            }
            RowProgram::Rho2 => match arena.node(row) {
                Node::Pair(a, items) => {
                    let (a, items) = (*a, *items);
                    match arena.node(items) {
                        Node::Set(ids) => {
                            let ids: Vec<InternId> = ids.to_vec();
                            let pairs = ids.iter().map(|&b| arena.pair(a, b)).collect();
                            Ok(arena.set(pairs))
                        }
                        _ => Err(shape("rho2", row, arena)),
                    }
                }
                _ => Err(shape("rho2", row, arena)),
            },
            RowProgram::Union => match arena.node(row) {
                Node::Pair(a, b) => {
                    let (a, b) = (*a, *b);
                    match (arena.node(a), arena.node(b)) {
                        (Node::Set(xs), Node::Set(ys)) => {
                            let mut out: Vec<InternId> = xs.to_vec();
                            out.extend(ys.iter().copied());
                            Ok(arena.set(out))
                        }
                        _ => Err(shape("union", row, arena)),
                    }
                }
                _ => Err(shape("union", row, arena)),
            },
            RowProgram::OrEta => Ok(arena.orset(vec![row])),
            RowProgram::OrMu => {
                let items = collection(row, arena, CollKind::OrSet, "or_mu")?;
                let mut out = Vec::new();
                for id in items {
                    match arena.node(id) {
                        Node::OrSet(inner) => out.extend(inner.iter().copied()),
                        _ => return Err(shape("or_mu", id, arena)),
                    }
                }
                Ok(arena.orset(out))
            }
            RowProgram::OrMap(f) => {
                let items = collection(row, arena, CollKind::OrSet, "ormap")?;
                let mut out = Vec::with_capacity(items.len());
                for id in items {
                    out.push(f.run(id, arena)?);
                }
                Ok(arena.orset(out))
            }
            RowProgram::OrRho2 => match arena.node(row) {
                Node::Pair(a, items) => {
                    let (a, items) = (*a, *items);
                    match arena.node(items) {
                        Node::OrSet(ids) => {
                            let ids: Vec<InternId> = ids.to_vec();
                            let pairs = ids.iter().map(|&b| arena.pair(a, b)).collect();
                            Ok(arena.orset(pairs))
                        }
                        _ => Err(shape("or_rho2", row, arena)),
                    }
                }
                _ => Err(shape("or_rho2", row, arena)),
            },
            RowProgram::OrUnion => match arena.node(row) {
                Node::Pair(a, b) => {
                    let (a, b) = (*a, *b);
                    match (arena.node(a), arena.node(b)) {
                        (Node::OrSet(xs), Node::OrSet(ys)) => {
                            let mut out: Vec<InternId> = xs.to_vec();
                            out.extend(ys.iter().copied());
                            Ok(arena.orset(out))
                        }
                        _ => Err(shape("or_union", row, arena)),
                    }
                }
                _ => Err(shape("or_union", row, arena)),
            },
            RowProgram::OrToSet => {
                let items = collection(row, arena, CollKind::OrSet, "ortoset")?;
                Ok(arena.set(items))
            }
            RowProgram::SetToOr => {
                let items = collection(row, arena, CollKind::Set, "settoor")?;
                Ok(arena.orset(items))
            }
            RowProgram::Opaque(m) => {
                let input = arena.decode(row);
                let output = eval(m, &input)?;
                Ok(arena.intern(&output))
            }
        }
    }
}

/// Append `m` (flattening nested compositions) to a step sequence in
/// application order.
fn flatten_compose(m: &Morphism, arena: &mut Interner, steps: &mut Vec<RowProgram>) {
    if let Morphism::Compose(f, g) = m {
        flatten_compose(g, arena, steps);
        flatten_compose(f, arena, steps);
    } else {
        steps.push(RowProgram::compile(m, arena));
    }
}

enum CollKind {
    Set,
    OrSet,
}

/// Read out the element ids of a set/or-set node (copied: the borrow on the
/// arena must end before sub-programs can mutate it).
fn collection(
    id: InternId,
    arena: &Interner,
    kind: CollKind,
    op: &'static str,
) -> Result<Vec<InternId>, EvalError> {
    match (kind, arena.node(id)) {
        (CollKind::Set, Node::Set(items)) => Ok(items.to_vec()),
        (CollKind::OrSet, Node::OrSet(items)) => Ok(items.to_vec()),
        _ => Err(shape(op, id, arena)),
    }
}

fn shape(op: &'static str, id: InternId, arena: &Interner) -> EvalError {
    EvalError::shape(op, &arena.value(id))
}

fn run_prim(p: Prim, row: InternId, arena: &mut Interner) -> Result<InternId, EvalError> {
    let err = |p: Prim, id: InternId, arena: &Interner| EvalError::Primitive {
        primitive: p.name().to_string(),
        message: format!("inapplicable to {}", arena.value(id)),
    };
    let int_pair = |id: InternId, arena: &Interner| -> Option<(i64, i64)> {
        if let Node::Pair(a, b) = arena.node(id) {
            if let (Node::Int(x), Node::Int(y)) = (arena.node(*a), arena.node(*b)) {
                return Some((*x, *y));
            }
        }
        None
    };
    let bool_pair = |id: InternId, arena: &Interner| -> Option<(bool, bool)> {
        if let Node::Pair(a, b) = arena.node(id) {
            if let (Node::Bool(x), Node::Bool(y)) = (arena.node(*a), arena.node(*b)) {
                return Some((*x, *y));
            }
        }
        None
    };
    match p {
        Prim::Plus => int_pair(row, arena)
            .map(|(a, b)| arena.int(a.wrapping_add(b)))
            .ok_or_else(|| err(p, row, arena)),
        Prim::Minus => int_pair(row, arena)
            .map(|(a, b)| arena.int(a.wrapping_sub(b)))
            .ok_or_else(|| err(p, row, arena)),
        Prim::Times => int_pair(row, arena)
            .map(|(a, b)| arena.int(a.wrapping_mul(b)))
            .ok_or_else(|| err(p, row, arena)),
        Prim::Leq => int_pair(row, arena)
            .map(|(a, b)| arena.bool(a <= b))
            .ok_or_else(|| err(p, row, arena)),
        Prim::Lt => int_pair(row, arena)
            .map(|(a, b)| arena.bool(a < b))
            .ok_or_else(|| err(p, row, arena)),
        Prim::Not => match arena.node(row) {
            Node::Bool(b) => {
                let b = !*b;
                Ok(arena.bool(b))
            }
            _ => Err(err(p, row, arena)),
        },
        Prim::And => bool_pair(row, arena)
            .map(|(a, b)| arena.bool(a && b))
            .ok_or_else(|| err(p, row, arena)),
        Prim::Or => bool_pair(row, arena)
            .map(|(a, b)| arena.bool(a || b))
            .ok_or_else(|| err(p, row, arena)),
        Prim::ValueLeq => match arena.node(row) {
            Node::Pair(a, b) => {
                let leq = arena.cmp(*a, *b) != std::cmp::Ordering::Greater;
                Ok(arena.bool(leq))
            }
            _ => Err(err(p, row, arena)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morphism::Morphism as M;
    use or_object::generate::{GenConfig, Generator};
    use or_object::Value;

    /// Compile + run on interned input must equal the tree-walking
    /// evaluator on the decoded input, across the whole compiled fragment.
    fn agree(m: &M, v: &Value) {
        let mut arena = Interner::new();
        let prog = RowProgram::compile(m, &mut arena);
        let row = arena.intern(v);
        let interned = prog.run(row, &mut arena).expect("row program runs");
        let expected = eval(m, v).expect("evaluator runs");
        assert_eq!(
            arena.value(interned),
            expected,
            "program disagrees with eval on {m} applied to {v}"
        );
        // re-running is stable (and interned: produces the same id)
        assert_eq!(prog.run(row, &mut arena).unwrap(), interned);
    }

    #[test]
    fn scalar_fragment_agrees_with_eval() {
        let pairs = Value::pair(Value::Int(3), Value::Int(4));
        agree(&M::Prim(Prim::Plus), &pairs);
        agree(&M::Prim(Prim::Leq), &pairs);
        agree(&M::pair(M::Proj2, M::Proj1), &pairs);
        agree(
            &M::Proj1.then(M::pair(M::Id, M::constant(Value::Int(3)))),
            &pairs,
        );
        agree(
            &M::Eq,
            &Value::pair(Value::int_set([1, 2]), Value::int_set([2, 1])),
        );
        agree(
            &M::cond(
                M::Prim(Prim::Leq),
                M::constant(Value::str("le")),
                M::constant(Value::str("gt")),
            ),
            &pairs,
        );
        agree(&M::Bang, &pairs);
        agree(&M::KEmptySet.after_bang(), &pairs);
        agree(&M::KEmptyOrSet.after_bang(), &pairs);
    }

    #[test]
    fn collection_fragment_agrees_with_eval() {
        let nested = Value::set([Value::int_set([1, 2]), Value::int_set([2, 3])]);
        agree(&M::Mu, &nested);
        agree(&M::map(M::Eta), &Value::int_set([1, 2, 3]));
        agree(&M::Eta, &Value::Int(7));
        agree(
            &M::Rho2,
            &Value::pair(Value::Int(1), Value::int_set([2, 3])),
        );
        agree(
            &M::Union,
            &Value::pair(Value::int_set([1, 2]), Value::int_set([2, 9])),
        );
        let or_nested = Value::orset([Value::int_orset([1, 2]), Value::int_orset([3])]);
        agree(&M::OrMu, &or_nested);
        agree(&M::ormap(M::OrEta), &Value::int_orset([1, 2]));
        agree(
            &M::OrRho2,
            &Value::pair(Value::Int(1), Value::int_orset([2, 3])),
        );
        agree(
            &M::OrUnion,
            &Value::pair(Value::int_orset([1]), Value::int_orset([2])),
        );
        agree(&M::OrToSet, &Value::int_orset([1, 2]));
        agree(&M::SetToOr, &Value::int_set([1, 2]));
        agree(
            &M::Prim(Prim::ValueLeq),
            &Value::pair(Value::Int(1), Value::str("x")),
        );
    }

    #[test]
    fn opaque_fallback_still_agrees() {
        let m = M::Normalize.then(M::OrToSet);
        assert!(!RowProgram::compile(&m, &mut Interner::new()).fully_interned());
        agree(&m, &Value::set([Value::int_orset([1, 2])]));
    }

    #[test]
    fn compiled_fragment_is_fully_interned() {
        let mut arena = Interner::new();
        let q = M::pair(M::Proj2, M::constant(Value::Int(30))).then(M::Prim(Prim::Leq));
        assert!(RowProgram::compile(&q, &mut arena).fully_interned());
        let q = M::pair(M::Id, M::Proj1.then(M::Proj2)).then(M::Rho2);
        assert!(RowProgram::compile(&q, &mut arena).fully_interned());
    }

    #[test]
    fn random_projection_pipelines_agree() {
        // fuzz the scalar fragment over generated pair-shaped inputs
        let config = GenConfig {
            max_depth: 3,
            max_width: 3,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(99, config);
        for _ in 0..50 {
            let (_, v) = gen.typed_object();
            agree(&M::Id, &v);
            agree(&M::pair(M::Id, M::Id), &v);
            agree(&M::pair(M::Id, M::Id).then(M::Eq), &v);
        }
    }

    #[test]
    fn shape_errors_match_the_evaluator() {
        let mut arena = Interner::new();
        let row = arena.intern(&Value::Int(3));
        let prog = RowProgram::compile(&M::Proj1, &mut arena);
        assert!(prog.run(row, &mut arena).is_err());
        assert!(eval(&M::Proj1, &Value::Int(3)).is_err());
        let prog = RowProgram::compile(&M::Mu, &mut arena);
        let row = arena.intern(&Value::int_set([1]));
        assert!(prog.run(row, &mut arena).is_err());
    }
}
