//! # or-nra — the or-NRA and or-NRA⁺ query languages
//!
//! The core of the reproduction of *Semantic Representations and Query
//! Languages for Or-Sets* (Libkin & Wong, PODS 1993 / JCSS 1996): a nested
//! relational algebra that freely mixes tuples, sets and **or-sets**, with a
//! conceptual level obtained by adding a single `normalize` primitive.
//!
//! * [`morphism`] — the expression syntax of Figure 1 (plus the `powerset`
//!   baseline and the `normalize` primitive of or-NRA⁺);
//! * [`infer`] — most-general-type inference and monomorphic checking;
//! * [`eval`](mod@eval) — the evaluator, under either the plain set semantics or the
//!   antichain semantics of Section 3;
//! * [`normalize`] — the structural→conceptual passage: direct recursive
//!   normalization and the paper's multiset-based rewriting construction;
//! * [`lazy`] — streaming normalization with early exit (Section 7's
//!   future-work item, needed by the SAT experiments);
//! * [`coherence`] — Theorem 4.2 as an executable property;
//! * [`expand`] — Corollary 4.3: `normalize` expressed inside plain or-NRA;
//! * [`preserve`] — Theorem 5.1 / Proposition 5.2: losslessness of
//!   normalization and conceptual analogs;
//! * [`cost`] — the Section 6 cost bounds, measured and closed-form;
//! * [`derived`] — the OR-SML-style derived operator library, including
//!   `powerset` from `alpha` (Proposition 2.1);
//! * [`optimize`] — an equational simplifier over the monad laws and the
//!   coherence-diagram equations, plus [`optimize::lower`], the entry point
//!   that lowers set-pipeline morphisms into physical plans;
//! * [`physical`] — the [`physical::PhysicalPlan`] IR executed by the
//!   streaming, parallel engine in the `or-engine` crate;
//! * [`verify`] — the static plan-invariant verifier: a typed checker that
//!   walks a [`physical::PhysicalPlan`] against a numbered rule catalog
//!   (arity, typing, Theorem 5.1 placement, budget admission) without
//!   executing it.  See `docs/ANALYZE.md`.
//!
//! ## Quick example
//!
//! ```
//! use or_nra::prelude::*;
//! use or_object::Value;
//!
//! // "Is there a cheap completed design?"  (Section 1's motivating query.)
//! let ischeap = Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(100)))
//!     .then(Morphism::Prim(Prim::Leq));
//! let query = Morphism::Normalize.then(or_exists(ischeap));
//!
//! // A design template: the component can be built at cost 120 or 80.
//! let template = Value::int_orset([120, 80]);
//! assert_eq!(eval(&query, &template).unwrap(), Value::Bool(true));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod coherence;
pub mod colprog;
pub mod cost;
pub mod derived;
pub mod error;
pub mod eval;
pub mod expand;
pub mod infer;
pub mod lazy;
pub mod morphism;
pub mod normalize;
pub mod optimize;
pub mod physical;
pub mod preserve;
pub mod rowprog;
pub mod verify;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::colprog::{ColumnCmp, ColumnPredicate, ColumnProgram};
    pub use crate::derived::{
        cartesian_product, difference, exists, forall, intersect, member, or_difference, or_exists,
        or_forall, or_intersect, or_member, or_select, or_subset, powerset_via_alpha, select,
        subset,
    };
    pub use crate::error::{EvalError, TypeError};
    pub use crate::eval::{eval, eval_antichain, EvalConfig, Evaluator};
    pub use crate::infer::{infer, output_type, FunType, SType};
    pub use crate::lazy::LazyNormalizer;
    pub use crate::morphism::{Morphism, Prim};
    pub use crate::normalize::{
        denotations, normalize_value, normalize_value_typed, normalize_with_strategy,
        possibility_count, RewriteStrategy,
    };
    pub use crate::optimize::{lower, optimize, simplified};
    pub use crate::physical::{LowerError, PhysicalPlan};
    pub use crate::preserve::{is_lossless_on, lossless_preconditions, preserve};
    pub use crate::rowprog::RowProgram;
    pub use crate::verify::{first_deny, verify_plan, Rule, Severity, VerifyConfig, Violation};
}

pub use error::{EvalError, TypeError};
pub use eval::eval;
pub use morphism::{Morphism, Prim};
pub use normalize::normalize_value;
