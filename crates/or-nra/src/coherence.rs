//! Executable coherence checking (Theorem 4.2).
//!
//! The Coherence Theorem states that the normal form of an object does not
//! depend on the rewriting strategy used to reach it.  This module makes the
//! theorem an executable property: [`check_coherence`] normalizes an object
//! under a portfolio of strategies (plus the direct recursive implementation)
//! and reports whether all runs agree.  Experiment E5 measures how much the
//! strategies differ in *cost* while never differing in *result*.

use or_object::{Type, Value};

use crate::error::EvalError;
use crate::normalize::{
    normalize_value_typed, normalize_with_strategy, NormalizationTrace, RewriteStrategy,
};

/// The outcome of normalizing one object under one strategy.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// The strategy used.
    pub strategy: RewriteStrategy,
    /// The resulting normal form.
    pub result: Value,
    /// The rewriting trace (number of steps, order of redexes).
    pub trace: NormalizationTrace,
}

/// The aggregated outcome of a coherence check.
#[derive(Debug, Clone)]
pub struct CoherenceReport {
    /// The common normal form (when coherent).
    pub normal_form: Value,
    /// Individual runs.
    pub runs: Vec<StrategyRun>,
    /// Whether all strategies (and the direct implementation) agreed.
    pub coherent: bool,
}

impl CoherenceReport {
    /// The minimum and maximum number of rewrite steps across strategies.
    pub fn step_range(&self) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0;
        for run in &self.runs {
            lo = lo.min(run.trace.steps.len());
            hi = hi.max(run.trace.steps.len());
        }
        if self.runs.is_empty() {
            (0, 0)
        } else {
            (lo, hi)
        }
    }
}

/// Normalize `v : ty` under every strategy in `strategies`, compare the
/// results with each other and with the direct recursive normalization, and
/// return the full report.
pub fn check_coherence(
    v: &Value,
    ty: &Type,
    strategies: &[RewriteStrategy],
) -> Result<CoherenceReport, EvalError> {
    let reference = normalize_value_typed(v, ty);
    let mut runs = Vec::with_capacity(strategies.len());
    let mut coherent = true;
    for &strategy in strategies {
        let (result, trace) = normalize_with_strategy(v, ty, strategy)?;
        if result != reference {
            coherent = false;
        }
        runs.push(StrategyRun {
            strategy,
            result,
            trace,
        });
    }
    Ok(CoherenceReport {
        normal_form: reference,
        runs,
        coherent,
    })
}

/// Convenience wrapper: check coherence under the default strategy portfolio
/// and return the (unique) normal form, or an error describing the first
/// disagreement.
pub fn coherent_normal_form(v: &Value, ty: &Type) -> Result<Value, EvalError> {
    let report = check_coherence(v, ty, &RewriteStrategy::portfolio())?;
    if report.coherent {
        Ok(report.normal_form)
    } else {
        Err(EvalError::Primitive {
            primitive: "normalize".to_string(),
            message: format!(
                "coherence violation: strategies disagree on {v} : {ty} (this would \
                 contradict Theorem 4.2 and indicates an implementation bug)"
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use or_object::generate::{GenConfig, Generator};

    #[test]
    fn section_4_example_is_coherent() {
        let v = Value::pair(
            Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]),
            Value::int_orset([1, 2]),
        );
        let t = Type::prod(Type::set(Type::orset(Type::Int)), Type::orset(Type::Int));
        let report = check_coherence(&v, &t, &RewriteStrategy::portfolio()).unwrap();
        assert!(report.coherent);
        assert_eq!(report.normal_form.elements().unwrap().len(), 4);
        let (lo, hi) = report.step_range();
        assert!(lo >= 1 && hi >= lo);
    }

    #[test]
    fn random_objects_are_coherent() {
        let config = GenConfig {
            max_depth: 4,
            max_width: 2,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(2024, config);
        for _ in 0..40 {
            let (ty, v) = gen.typed_or_object();
            let report = check_coherence(&v, &ty, &RewriteStrategy::portfolio())
                .unwrap_or_else(|e| panic!("normalization failed on {v} : {ty}: {e}"));
            assert!(report.coherent, "incoherent normalization of {v} : {ty}");
        }
    }

    #[test]
    fn coherent_normal_form_returns_the_normal_form() {
        let v = Value::orset([Value::int_orset([1, 2]), Value::int_orset([3])]);
        let t = Type::orset(Type::orset(Type::Int));
        assert_eq!(
            coherent_normal_form(&v, &t).unwrap(),
            Value::int_orset([1, 2, 3])
        );
    }

    #[test]
    fn strategies_can_take_different_numbers_of_steps_on_bigger_types() {
        // a type with several independent redexes lets strategies diverge in
        // path, though never in result
        let t = Type::prod(
            Type::set(Type::orset(Type::Int)),
            Type::prod(Type::orset(Type::Int), Type::orset(Type::Bool)),
        );
        let v = Value::pair(
            Value::set([Value::int_orset([1, 2])]),
            Value::pair(Value::int_orset([3, 4]), Value::orset([Value::Bool(true)])),
        );
        let report = check_coherence(&v, &t, &RewriteStrategy::portfolio()).unwrap();
        assert!(report.coherent);
    }
}
