//! The big-step evaluator for or-NRA⁺ morphisms.
//!
//! Two semantics are supported, mirroring Section 3:
//!
//! * the plain finite-set semantics (the default), and
//! * the antichain semantics, in which every set- or or-set-producing step is
//!   followed by `max` / `min` with respect to the structural order over a
//!   chosen base order.
//!
//! The evaluator is defensive: shape mismatches produce [`EvalError`]s rather
//! than panics, and a configurable step budget guards against accidentally
//! exponential intermediate results in interactive use.

use or_object::alpha::{alpha_antichain, alpha_set};
use or_object::antichain::{orset_min, set_max};
use or_object::prelude::*;

use crate::error::EvalError;
use crate::morphism::{Morphism, Prim};
use crate::normalize;

/// Evaluation configuration.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// When `Some(base)`, use the antichain semantics over the given base
    /// order; when `None`, use the plain set semantics.
    pub antichain: Option<BaseOrder>,
    /// Maximum number of morphism applications before aborting with
    /// [`EvalError::ResourceLimit`].  `u64::MAX` disables the check.
    pub max_steps: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            antichain: None,
            max_steps: u64::MAX,
        }
    }
}

impl EvalConfig {
    /// Plain set semantics, unlimited steps.
    pub fn plain() -> Self {
        EvalConfig::default()
    }

    /// Antichain semantics over the given base order.
    pub fn antichain(base: BaseOrder) -> Self {
        EvalConfig {
            antichain: Some(base),
            max_steps: u64::MAX,
        }
    }

    /// Limit the number of evaluation steps.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }
}

/// The evaluator.  Create one per query (it carries the step counter).
#[derive(Debug)]
pub struct Evaluator {
    config: EvalConfig,
    steps: u64,
}

impl Evaluator {
    /// Create an evaluator with the given configuration.
    pub fn new(config: EvalConfig) -> Self {
        Evaluator { config, steps: 0 }
    }

    /// Number of morphism applications performed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Apply a morphism to a value.
    pub fn eval(&mut self, m: &Morphism, v: &Value) -> Result<Value, EvalError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            return Err(EvalError::ResourceLimit {
                limit: format!("max_steps = {}", self.config.max_steps),
            });
        }
        match m {
            Morphism::Id => Ok(v.clone()),
            Morphism::Compose(f, g) => {
                let mid = self.eval(g, v)?;
                self.eval(f, &mid)
            }
            Morphism::Proj1 => match v.as_pair() {
                Some((a, _)) => Ok(a.clone()),
                None => Err(EvalError::shape("pi1", v)),
            },
            Morphism::Proj2 => match v.as_pair() {
                Some((_, b)) => Ok(b.clone()),
                None => Err(EvalError::shape("pi2", v)),
            },
            Morphism::PairWith(f, g) => {
                let a = self.eval(f, v)?;
                let b = self.eval(g, v)?;
                Ok(Value::pair(a, b))
            }
            Morphism::Bang => Ok(Value::Unit),
            Morphism::Const(c) => Ok(c.clone()),
            Morphism::Eq => match v.as_pair() {
                Some((a, b)) => Ok(Value::Bool(a == b)),
                None => Err(EvalError::shape("eq", v)),
            },
            Morphism::Cond(p, f, g) => {
                let test = self.eval(p, v)?;
                match test.as_bool() {
                    Some(true) => self.eval(f, v),
                    Some(false) => self.eval(g, v),
                    None => Err(EvalError::NonBooleanCondition {
                        value: test.to_string(),
                    }),
                }
            }
            Morphism::Prim(p) => self.eval_prim(*p, v),

            Morphism::Eta => Ok(self.mk_set(vec![v.clone()])),
            Morphism::Mu => match v {
                Value::Set(items) => {
                    let mut out = Vec::new();
                    for item in items {
                        match item {
                            Value::Set(inner) => out.extend(inner.iter().cloned()),
                            other => return Err(EvalError::shape("mu", other)),
                        }
                    }
                    Ok(self.mk_set(out))
                }
                other => Err(EvalError::shape("mu", other)),
            },
            Morphism::Map(f) => match v {
                Value::Set(items) => {
                    let mapped: Result<Vec<Value>, EvalError> =
                        items.iter().map(|x| self.eval(f, x)).collect();
                    Ok(self.mk_set(mapped?))
                }
                other => Err(EvalError::shape("map", other)),
            },
            Morphism::Rho2 => match v.as_pair() {
                Some((a, Value::Set(items))) => Ok(self.mk_set(
                    items
                        .iter()
                        .map(|b| Value::pair(a.clone(), b.clone()))
                        .collect(),
                )),
                _ => Err(EvalError::shape("rho2", v)),
            },
            Morphism::Union => match v.as_pair() {
                Some((Value::Set(a), Value::Set(b))) => {
                    let mut out = a.clone();
                    out.extend(b.iter().cloned());
                    Ok(self.mk_set(out))
                }
                _ => Err(EvalError::shape("union", v)),
            },
            Morphism::KEmptySet => Ok(Value::empty_set()),

            Morphism::OrEta => Ok(self.mk_orset(vec![v.clone()])),
            Morphism::OrMu => match v {
                Value::OrSet(items) => {
                    let mut out = Vec::new();
                    for item in items {
                        match item {
                            Value::OrSet(inner) => out.extend(inner.iter().cloned()),
                            other => return Err(EvalError::shape("or_mu", other)),
                        }
                    }
                    Ok(self.mk_orset(out))
                }
                other => Err(EvalError::shape("or_mu", other)),
            },
            Morphism::OrMap(f) => match v {
                Value::OrSet(items) => {
                    let mapped: Result<Vec<Value>, EvalError> =
                        items.iter().map(|x| self.eval(f, x)).collect();
                    Ok(self.mk_orset(mapped?))
                }
                other => Err(EvalError::shape("ormap", other)),
            },
            Morphism::OrRho2 => match v.as_pair() {
                Some((a, Value::OrSet(items))) => Ok(self.mk_orset(
                    items
                        .iter()
                        .map(|b| Value::pair(a.clone(), b.clone()))
                        .collect(),
                )),
                _ => Err(EvalError::shape("or_rho2", v)),
            },
            Morphism::OrUnion => match v.as_pair() {
                Some((Value::OrSet(a), Value::OrSet(b))) => {
                    let mut out = a.clone();
                    out.extend(b.iter().cloned());
                    Ok(self.mk_orset(out))
                }
                _ => Err(EvalError::shape("or_union", v)),
            },
            Morphism::KEmptyOrSet => Ok(Value::empty_orset()),

            Morphism::Alpha => match self.config.antichain {
                None => alpha_set(v).map_err(|e| EvalError::Primitive {
                    primitive: "alpha".to_string(),
                    message: e.to_string(),
                }),
                Some(base) => alpha_antichain(base, v).map_err(|e| EvalError::Primitive {
                    primitive: "alpha".to_string(),
                    message: e.to_string(),
                }),
            },
            Morphism::OrToSet => match v {
                Value::OrSet(items) => Ok(self.mk_set(items.clone())),
                other => Err(EvalError::shape("ortoset", other)),
            },
            Morphism::SetToOr => match v {
                Value::Set(items) => Ok(self.mk_orset(items.clone())),
                other => Err(EvalError::shape("settoor", other)),
            },
            Morphism::Powerset => match v {
                Value::Set(items) => {
                    if items.len() > 24 {
                        return Err(EvalError::ResourceLimit {
                            limit: format!("powerset of a {}-element set", items.len()),
                        });
                    }
                    let n = items.len();
                    let mut out = Vec::with_capacity(1 << n);
                    for mask in 0u32..(1u32 << n) {
                        let subset: Vec<Value> = items
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| mask & (1 << i) != 0)
                            .map(|(_, x)| x.clone())
                            .collect();
                        out.push(Value::set(subset));
                    }
                    Ok(self.mk_set(out))
                }
                other => Err(EvalError::shape("powerset", other)),
            },

            Morphism::Normalize => Ok(normalize::normalize_value(v)),
        }
    }

    fn eval_prim(&mut self, p: Prim, v: &Value) -> Result<Value, EvalError> {
        let int_pair = |v: &Value| -> Option<(i64, i64)> {
            let (a, b) = v.as_pair()?;
            Some((a.as_int()?, b.as_int()?))
        };
        let bool_pair = |v: &Value| -> Option<(bool, bool)> {
            let (a, b) = v.as_pair()?;
            Some((a.as_bool()?, b.as_bool()?))
        };
        let err = |p: Prim, v: &Value| EvalError::Primitive {
            primitive: p.name().to_string(),
            message: format!("inapplicable to {v}"),
        };
        match p {
            Prim::Plus => int_pair(v)
                .map(|(a, b)| Value::Int(a.wrapping_add(b)))
                .ok_or_else(|| err(p, v)),
            Prim::Minus => int_pair(v)
                .map(|(a, b)| Value::Int(a.wrapping_sub(b)))
                .ok_or_else(|| err(p, v)),
            Prim::Times => int_pair(v)
                .map(|(a, b)| Value::Int(a.wrapping_mul(b)))
                .ok_or_else(|| err(p, v)),
            Prim::Leq => int_pair(v)
                .map(|(a, b)| Value::Bool(a <= b))
                .ok_or_else(|| err(p, v)),
            Prim::Lt => int_pair(v)
                .map(|(a, b)| Value::Bool(a < b))
                .ok_or_else(|| err(p, v)),
            Prim::Not => v
                .as_bool()
                .map(|b| Value::Bool(!b))
                .ok_or_else(|| err(p, v)),
            Prim::And => bool_pair(v)
                .map(|(a, b)| Value::Bool(a && b))
                .ok_or_else(|| err(p, v)),
            Prim::Or => bool_pair(v)
                .map(|(a, b)| Value::Bool(a || b))
                .ok_or_else(|| err(p, v)),
            Prim::ValueLeq => match v.as_pair() {
                Some((a, b)) => Ok(Value::Bool(a <= b)),
                None => Err(err(p, v)),
            },
        }
    }

    fn mk_set(&self, items: Vec<Value>) -> Value {
        match self.config.antichain {
            None => Value::set(items),
            Some(base) => Value::set(set_max(base, &items)),
        }
    }

    fn mk_orset(&self, items: Vec<Value>) -> Value {
        match self.config.antichain {
            None => Value::orset(items),
            Some(base) => Value::orset(orset_min(base, &items)),
        }
    }
}

/// Evaluate a morphism on a value with the plain set semantics.
pub fn eval(m: &Morphism, v: &Value) -> Result<Value, EvalError> {
    Evaluator::new(EvalConfig::plain()).eval(m, v)
}

/// Evaluate a morphism on a value with the antichain semantics.
pub fn eval_antichain(base: BaseOrder, m: &Morphism, v: &Value) -> Result<Value, EvalError> {
    Evaluator::new(EvalConfig::antichain(base)).eval(m, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morphism::Morphism as M;

    #[test]
    fn or_rho2_paper_example() {
        // or_rho2 (1, <2,3>) = <(1,2), (1,3)>
        let input = Value::pair(Value::Int(1), Value::int_orset([2, 3]));
        let out = eval(&M::OrRho2, &input).unwrap();
        assert_eq!(
            out,
            Value::orset([
                Value::pair(Value::Int(1), Value::Int(2)),
                Value::pair(Value::Int(1), Value::Int(3)),
            ])
        );
    }

    #[test]
    fn or_mu_paper_example() {
        // or_mu <<1,2,3>, <2,4>> = <1,2,3,4>
        let input = Value::orset([Value::int_orset([1, 2, 3]), Value::int_orset([2, 4])]);
        assert_eq!(
            eval(&M::OrMu, &input).unwrap(),
            Value::int_orset([1, 2, 3, 4])
        );
    }

    #[test]
    fn cheap_design_query_from_section_2() {
        // or_mu ∘ ormap(cond(ischeap, or_eta, K<> ∘ !)) ∘ normalize
        let ischeap = M::pair(M::Id, M::constant(Value::Int(100))).then(M::Prim(Prim::Leq));
        let query = M::Normalize
            .then(M::ormap(M::cond(
                ischeap,
                M::OrEta,
                M::KEmptyOrSet.after_bang(),
            )))
            .then(M::OrMu);
        // the database: a design whose cost is either 50, 150 or 99
        let db = Value::int_orset([50, 150, 99]);
        let out = eval(&query, &db).unwrap();
        assert_eq!(out, Value::int_orset([50, 99]));
    }

    #[test]
    fn map_and_mu_work_on_sets() {
        let double = M::pair(M::Id, M::Id).then(M::Prim(Prim::Plus));
        let m = M::map(double);
        let input = Value::int_set([1, 2, 3]);
        assert_eq!(eval(&m, &input).unwrap(), Value::int_set([2, 4, 6]));
    }

    #[test]
    fn eq_is_structural_equality() {
        let v = Value::pair(Value::int_orset([1, 2]), Value::int_orset([2, 1]));
        assert_eq!(eval(&M::Eq, &v).unwrap(), Value::Bool(true));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(eval(&M::Proj1, &Value::Int(3)).is_err());
        assert!(eval(&M::Mu, &Value::int_set([1])).is_err());
        assert!(eval(&M::OrMap(Box::new(M::Id)), &Value::int_set([1])).is_err());
    }

    #[test]
    fn step_budget_is_enforced() {
        let mut ev = Evaluator::new(EvalConfig::plain().with_max_steps(3));
        let m = M::map(M::map(M::Id));
        let input = Value::set([Value::int_set([1, 2, 3])]);
        assert!(matches!(
            ev.eval(&m, &input),
            Err(EvalError::ResourceLimit { .. })
        ));
    }

    #[test]
    fn powerset_baseline() {
        let out = eval(&M::Powerset, &Value::int_set([1, 2])).unwrap();
        assert_eq!(
            out,
            Value::set([
                Value::empty_set(),
                Value::int_set([1]),
                Value::int_set([2]),
                Value::int_set([1, 2]),
            ])
        );
    }

    #[test]
    fn antichain_semantics_prunes_results() {
        // union of {(null, 515)} and {(Joe, 515)} under the flat order keeps
        // only the maximal record.
        let a = Value::set([Value::pair(Value::Null, Value::Int(515))]);
        let b = Value::set([Value::pair(Value::str("Joe"), Value::Int(515))]);
        let input = Value::pair(a, b);
        let plain = eval(&M::Union, &input).unwrap();
        assert_eq!(plain.elements().unwrap().len(), 2);
        let anti = eval_antichain(BaseOrder::FlatWithNull, &M::Union, &input).unwrap();
        assert_eq!(
            anti,
            Value::set([Value::pair(Value::str("Joe"), Value::Int(515))])
        );
    }

    #[test]
    fn ortoset_and_settoor_convert() {
        assert_eq!(
            eval(&M::OrToSet, &Value::int_orset([1, 2])).unwrap(),
            Value::int_set([1, 2])
        );
        assert_eq!(
            eval(&M::SetToOr, &Value::int_set([1, 2])).unwrap(),
            Value::int_orset([1, 2])
        );
    }

    #[test]
    fn primitives_compute() {
        let p = Value::pair(Value::Int(3), Value::Int(4));
        assert_eq!(eval(&M::Prim(Prim::Plus), &p).unwrap(), Value::Int(7));
        assert_eq!(eval(&M::Prim(Prim::Leq), &p).unwrap(), Value::Bool(true));
        assert_eq!(
            eval(&M::Prim(Prim::Not), &Value::Bool(false)).unwrap(),
            Value::Bool(true)
        );
        assert!(eval(&M::Prim(Prim::Plus), &Value::Bool(true)).is_err());
    }
}
