//! Type inference and type checking for or-NRA morphisms.
//!
//! The paper notes (Section 2) that "type superscripts are usually omitted
//! because the most general type of any given morphism can be inferred".
//! This module provides both directions:
//!
//! * [`infer`] — Hindley–Milner-style inference of the *most general*
//!   function type `dom → cod` of a morphism, with type variables standing
//!   for the polymorphic parts.  `normalize` is rejected here because, as the
//!   paper points out, it "cannot be defined in a polymorphic way".
//! * [`output_type`] — monomorphic checking: given a concrete input type,
//!   compute the concrete output type (this is what the evaluator, the
//!   surface language and the losslessness machinery use).  `normalize` is
//!   supported because the input type is known.

use std::collections::HashMap;
use std::fmt;

use or_object::Type;

use crate::error::TypeError;
use crate::morphism::{Morphism, Prim};

/// A type possibly containing type variables (used during inference).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SType {
    /// A type variable.
    Var(u32),
    /// Booleans.
    Bool,
    /// Integers.
    Int,
    /// Strings.
    Str,
    /// The unit type.
    Unit,
    /// Products.
    Prod(Box<SType>, Box<SType>),
    /// Sets.
    Set(Box<SType>),
    /// Or-sets.
    OrSet(Box<SType>),
}

impl SType {
    /// Product constructor.
    pub fn prod(a: SType, b: SType) -> SType {
        SType::Prod(Box::new(a), Box::new(b))
    }

    /// Set constructor.
    pub fn set(t: SType) -> SType {
        SType::Set(Box::new(t))
    }

    /// Or-set constructor.
    pub fn orset(t: SType) -> SType {
        SType::OrSet(Box::new(t))
    }

    /// Convert a ground scheme type into a concrete object type.
    pub fn to_type(&self) -> Result<Type, TypeError> {
        match self {
            SType::Var(_) => Err(TypeError::NotGround {
                ty: self.to_string(),
            }),
            SType::Bool => Ok(Type::Bool),
            SType::Int => Ok(Type::Int),
            SType::Str => Ok(Type::Str),
            SType::Unit => Ok(Type::Unit),
            SType::Prod(a, b) => Ok(Type::prod(a.to_type()?, b.to_type()?)),
            SType::Set(t) => Ok(Type::set(t.to_type()?)),
            SType::OrSet(t) => Ok(Type::orset(t.to_type()?)),
        }
    }

    /// Convert a ground scheme type into a concrete object type, defaulting
    /// any remaining type variables to `unit` (used for empty collections
    /// whose element type is unconstrained).
    pub fn to_type_defaulting(&self) -> Type {
        match self {
            SType::Var(_) => Type::Unit,
            SType::Bool => Type::Bool,
            SType::Int => Type::Int,
            SType::Str => Type::Str,
            SType::Unit => Type::Unit,
            SType::Prod(a, b) => Type::prod(a.to_type_defaulting(), b.to_type_defaulting()),
            SType::Set(t) => Type::set(t.to_type_defaulting()),
            SType::OrSet(t) => Type::orset(t.to_type_defaulting()),
        }
    }

    /// Embed a concrete object type.  Bag types are internal to the
    /// normalization machinery and never appear in morphism types.
    pub fn from_type(t: &Type) -> SType {
        match t {
            Type::Bool => SType::Bool,
            Type::Int => SType::Int,
            Type::Str => SType::Str,
            Type::Unit => SType::Unit,
            Type::Prod(a, b) => SType::prod(SType::from_type(a), SType::from_type(b)),
            Type::Set(t) => SType::set(SType::from_type(t)),
            Type::OrSet(t) => SType::orset(SType::from_type(t)),
            Type::Bag(t) => SType::set(SType::from_type(t)),
        }
    }

    fn occurs(&self, v: u32) -> bool {
        match self {
            SType::Var(w) => *w == v,
            SType::Prod(a, b) => a.occurs(v) || b.occurs(v),
            SType::Set(t) | SType::OrSet(t) => t.occurs(v),
            _ => false,
        }
    }
}

impl fmt::Display for SType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SType::Var(v) => write!(f, "'t{v}"),
            SType::Bool => write!(f, "bool"),
            SType::Int => write!(f, "int"),
            SType::Str => write!(f, "string"),
            SType::Unit => write!(f, "unit"),
            SType::Prod(a, b) => write!(f, "({a} * {b})"),
            SType::Set(t) => write!(f, "{{{t}}}"),
            SType::OrSet(t) => write!(f, "<{t}>"),
        }
    }
}

/// The inferred function type of a morphism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunType {
    /// Domain type.
    pub dom: SType,
    /// Codomain type.
    pub cod: SType,
}

impl fmt::Display for FunType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.dom, self.cod)
    }
}

/// A union-find-free substitution-based unifier.
#[derive(Debug, Default)]
pub struct Unifier {
    counter: u32,
    bindings: HashMap<u32, SType>,
}

impl Unifier {
    /// Create an empty unifier.
    pub fn new() -> Self {
        Unifier::default()
    }

    /// A fresh type variable.
    pub fn fresh(&mut self) -> SType {
        let v = self.counter;
        self.counter += 1;
        SType::Var(v)
    }

    /// Fully apply the current substitution to a type.
    pub fn resolve(&self, t: &SType) -> SType {
        match t {
            SType::Var(v) => match self.bindings.get(v) {
                Some(bound) => self.resolve(bound),
                None => t.clone(),
            },
            SType::Prod(a, b) => SType::prod(self.resolve(a), self.resolve(b)),
            SType::Set(inner) => SType::set(self.resolve(inner)),
            SType::OrSet(inner) => SType::orset(self.resolve(inner)),
            other => other.clone(),
        }
    }

    /// Unify two types, extending the substitution.
    pub fn unify(&mut self, a: &SType, b: &SType, context: &str) -> Result<(), TypeError> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (&a, &b) {
            (SType::Var(v), _) => self.bind(*v, &b),
            (_, SType::Var(v)) => self.bind(*v, &a),
            (SType::Bool, SType::Bool)
            | (SType::Int, SType::Int)
            | (SType::Str, SType::Str)
            | (SType::Unit, SType::Unit) => Ok(()),
            (SType::Prod(a1, a2), SType::Prod(b1, b2)) => {
                self.unify(a1, b1, context)?;
                self.unify(a2, b2, context)
            }
            (SType::Set(x), SType::Set(y)) | (SType::OrSet(x), SType::OrSet(y)) => {
                self.unify(x, y, context)
            }
            _ => Err(TypeError::Mismatch {
                expected: a.to_string(),
                found: b.to_string(),
                context: context.to_string(),
            }),
        }
    }

    fn bind(&mut self, v: u32, t: &SType) -> Result<(), TypeError> {
        if let SType::Var(w) = t {
            if *w == v {
                return Ok(());
            }
        }
        if t.occurs(v) {
            return Err(TypeError::Occurs {
                var: v,
                ty: t.to_string(),
            });
        }
        self.bindings.insert(v, t.clone());
        Ok(())
    }
}

fn prim_fun(u: &mut Unifier, p: Prim) -> FunType {
    match p {
        Prim::Plus | Prim::Minus | Prim::Times => FunType {
            dom: SType::prod(SType::Int, SType::Int),
            cod: SType::Int,
        },
        Prim::Leq | Prim::Lt => FunType {
            dom: SType::prod(SType::Int, SType::Int),
            cod: SType::Bool,
        },
        Prim::Not => FunType {
            dom: SType::Bool,
            cod: SType::Bool,
        },
        Prim::And | Prim::Or => FunType {
            dom: SType::prod(SType::Bool, SType::Bool),
            cod: SType::Bool,
        },
        Prim::ValueLeq => {
            let a = u.fresh();
            FunType {
                dom: SType::prod(a.clone(), a),
                cod: SType::Bool,
            }
        }
    }
}

fn infer_in(u: &mut Unifier, m: &Morphism) -> Result<FunType, TypeError> {
    let fun = |dom, cod| FunType { dom, cod };
    match m {
        Morphism::Id => {
            let a = u.fresh();
            Ok(fun(a.clone(), a))
        }
        Morphism::Compose(f, g) => {
            let tg = infer_in(u, g)?;
            let tf = infer_in(u, f)?;
            u.unify(&tg.cod, &tf.dom, "composition")?;
            Ok(fun(tg.dom, tf.cod))
        }
        Morphism::Proj1 => {
            let a = u.fresh();
            let b = u.fresh();
            Ok(fun(SType::prod(a.clone(), b), a))
        }
        Morphism::Proj2 => {
            let a = u.fresh();
            let b = u.fresh();
            Ok(fun(SType::prod(a, b.clone()), b))
        }
        Morphism::PairWith(f, g) => {
            let tf = infer_in(u, f)?;
            let tg = infer_in(u, g)?;
            u.unify(&tf.dom, &tg.dom, "pair formation")?;
            Ok(fun(tf.dom, SType::prod(tf.cod, tg.cod)))
        }
        Morphism::Bang => Ok(fun(u.fresh(), SType::Unit)),
        Morphism::Const(c) => {
            let ty = c.infer_type().map_err(|e| TypeError::Shape {
                message: format!("cannot infer the type of constant {c}: {e}"),
            })?;
            Ok(fun(SType::Unit, SType::from_type(&ty)))
        }
        Morphism::Eq => {
            let a = u.fresh();
            Ok(fun(SType::prod(a.clone(), a), SType::Bool))
        }
        Morphism::Cond(p, f, g) => {
            let tp = infer_in(u, p)?;
            let tf = infer_in(u, f)?;
            let tg = infer_in(u, g)?;
            u.unify(&tp.cod, &SType::Bool, "cond predicate")?;
            u.unify(&tp.dom, &tf.dom, "cond branches")?;
            u.unify(&tf.dom, &tg.dom, "cond branches")?;
            u.unify(&tf.cod, &tg.cod, "cond branches")?;
            Ok(fun(tf.dom, tf.cod))
        }
        Morphism::Prim(p) => Ok(prim_fun(u, *p)),
        Morphism::Eta => {
            let a = u.fresh();
            Ok(fun(a.clone(), SType::set(a)))
        }
        Morphism::Mu => {
            let a = u.fresh();
            Ok(fun(SType::set(SType::set(a.clone())), SType::set(a)))
        }
        Morphism::Map(f) => {
            let tf = infer_in(u, f)?;
            Ok(fun(SType::set(tf.dom), SType::set(tf.cod)))
        }
        Morphism::Rho2 => {
            let a = u.fresh();
            let b = u.fresh();
            Ok(fun(
                SType::prod(a.clone(), SType::set(b.clone())),
                SType::set(SType::prod(a, b)),
            ))
        }
        Morphism::Union => {
            let a = u.fresh();
            Ok(fun(
                SType::prod(SType::set(a.clone()), SType::set(a.clone())),
                SType::set(a),
            ))
        }
        Morphism::KEmptySet => Ok(fun(SType::Unit, SType::set(u.fresh()))),
        Morphism::OrEta => {
            let a = u.fresh();
            Ok(fun(a.clone(), SType::orset(a)))
        }
        Morphism::OrMu => {
            let a = u.fresh();
            Ok(fun(SType::orset(SType::orset(a.clone())), SType::orset(a)))
        }
        Morphism::OrMap(f) => {
            let tf = infer_in(u, f)?;
            Ok(fun(SType::orset(tf.dom), SType::orset(tf.cod)))
        }
        Morphism::OrRho2 => {
            let a = u.fresh();
            let b = u.fresh();
            Ok(fun(
                SType::prod(a.clone(), SType::orset(b.clone())),
                SType::orset(SType::prod(a, b)),
            ))
        }
        Morphism::OrUnion => {
            let a = u.fresh();
            Ok(fun(
                SType::prod(SType::orset(a.clone()), SType::orset(a.clone())),
                SType::orset(a),
            ))
        }
        Morphism::KEmptyOrSet => Ok(fun(SType::Unit, SType::orset(u.fresh()))),
        Morphism::Alpha => {
            let a = u.fresh();
            Ok(fun(
                SType::set(SType::orset(a.clone())),
                SType::orset(SType::set(a)),
            ))
        }
        Morphism::OrToSet => {
            let a = u.fresh();
            Ok(fun(SType::orset(a.clone()), SType::set(a)))
        }
        Morphism::SetToOr => {
            let a = u.fresh();
            Ok(fun(SType::set(a.clone()), SType::orset(a)))
        }
        Morphism::Powerset => {
            let a = u.fresh();
            Ok(fun(SType::set(a.clone()), SType::set(SType::set(a))))
        }
        Morphism::Normalize => Err(TypeError::Shape {
            message: "normalize has no polymorphic type; use output_type with a concrete \
                      input type (Corollary 4.3 makes it expressible per-type only)"
                .to_string(),
        }),
    }
}

/// Infer the most general function type of a morphism of or-NRA.
pub fn infer(m: &Morphism) -> Result<FunType, TypeError> {
    let mut u = Unifier::new();
    let t = infer_in(&mut u, m)?;
    Ok(FunType {
        dom: u.resolve(&t.dom),
        cod: u.resolve(&t.cod),
    })
}

/// Check a morphism against a concrete input type and compute the concrete
/// output type.  Supports `normalize` (whose output type is `nf(input)`).
///
/// Remaining unconstrained element types (arising only from empty-collection
/// constants whose contents are never inspected) default to `unit`.
pub fn output_type(m: &Morphism, input: &Type) -> Result<Type, TypeError> {
    let mut u = Unifier::new();
    let out = check_in(&mut u, m, &SType::from_type(input))?;
    Ok(u.resolve(&out).to_type_defaulting())
}

fn expect_prod(u: &mut Unifier, t: &SType, context: &str) -> Result<(SType, SType), TypeError> {
    let a = u.fresh();
    let b = u.fresh();
    u.unify(t, &SType::prod(a.clone(), b.clone()), context)?;
    Ok((u.resolve(&a), u.resolve(&b)))
}

fn expect_set(u: &mut Unifier, t: &SType, context: &str) -> Result<SType, TypeError> {
    let a = u.fresh();
    u.unify(t, &SType::set(a.clone()), context)?;
    Ok(u.resolve(&a))
}

fn expect_orset(u: &mut Unifier, t: &SType, context: &str) -> Result<SType, TypeError> {
    let a = u.fresh();
    u.unify(t, &SType::orset(a.clone()), context)?;
    Ok(u.resolve(&a))
}

fn check_in(u: &mut Unifier, m: &Morphism, input: &SType) -> Result<SType, TypeError> {
    match m {
        Morphism::Id => Ok(input.clone()),
        Morphism::Compose(f, g) => {
            let mid = check_in(u, g, input)?;
            check_in(u, f, &mid)
        }
        Morphism::Proj1 => Ok(expect_prod(u, input, "pi1")?.0),
        Morphism::Proj2 => Ok(expect_prod(u, input, "pi2")?.1),
        Morphism::PairWith(f, g) => {
            let a = check_in(u, f, input)?;
            let b = check_in(u, g, input)?;
            Ok(SType::prod(a, b))
        }
        Morphism::Bang => Ok(SType::Unit),
        Morphism::Const(c) => {
            let ty = c.infer_type().map_err(|e| TypeError::Shape {
                message: format!("cannot infer the type of constant {c}: {e}"),
            })?;
            Ok(SType::from_type(&ty))
        }
        Morphism::Eq => {
            let (a, b) = expect_prod(u, input, "eq")?;
            u.unify(&a, &b, "eq")?;
            Ok(SType::Bool)
        }
        Morphism::Cond(p, f, g) => {
            let tp = check_in(u, p, input)?;
            u.unify(&tp, &SType::Bool, "cond predicate")?;
            let tf = check_in(u, f, input)?;
            let tg = check_in(u, g, input)?;
            u.unify(&tf, &tg, "cond branches")?;
            Ok(u.resolve(&tf))
        }
        Morphism::Prim(p) => {
            let ft = prim_fun(u, *p);
            u.unify(&ft.dom, input, p.name())?;
            Ok(u.resolve(&ft.cod))
        }
        Morphism::Eta => Ok(SType::set(input.clone())),
        Morphism::Mu => {
            let inner = expect_set(u, input, "mu")?;
            let elem = expect_set(u, &inner, "mu")?;
            Ok(SType::set(elem))
        }
        Morphism::Map(f) => {
            let elem = expect_set(u, input, "map")?;
            let out = check_in(u, f, &elem)?;
            Ok(SType::set(out))
        }
        Morphism::Rho2 => {
            let (a, bs) = expect_prod(u, input, "rho2")?;
            let b = expect_set(u, &bs, "rho2")?;
            Ok(SType::set(SType::prod(a, b)))
        }
        Morphism::Union => {
            let (a, b) = expect_prod(u, input, "union")?;
            let ea = expect_set(u, &a, "union")?;
            let eb = expect_set(u, &b, "union")?;
            u.unify(&ea, &eb, "union")?;
            Ok(SType::set(u.resolve(&ea)))
        }
        Morphism::KEmptySet => {
            u.unify(input, &SType::Unit, "K{}")?;
            Ok(SType::set(u.fresh()))
        }
        Morphism::OrEta => Ok(SType::orset(input.clone())),
        Morphism::OrMu => {
            let inner = expect_orset(u, input, "or_mu")?;
            let elem = expect_orset(u, &inner, "or_mu")?;
            Ok(SType::orset(elem))
        }
        Morphism::OrMap(f) => {
            let elem = expect_orset(u, input, "ormap")?;
            let out = check_in(u, f, &elem)?;
            Ok(SType::orset(out))
        }
        Morphism::OrRho2 => {
            let (a, bs) = expect_prod(u, input, "or_rho2")?;
            let b = expect_orset(u, &bs, "or_rho2")?;
            Ok(SType::orset(SType::prod(a, b)))
        }
        Morphism::OrUnion => {
            let (a, b) = expect_prod(u, input, "or_union")?;
            let ea = expect_orset(u, &a, "or_union")?;
            let eb = expect_orset(u, &b, "or_union")?;
            u.unify(&ea, &eb, "or_union")?;
            Ok(SType::orset(u.resolve(&ea)))
        }
        Morphism::KEmptyOrSet => {
            u.unify(input, &SType::Unit, "K<>")?;
            Ok(SType::orset(u.fresh()))
        }
        Morphism::Alpha => {
            let elem = expect_set(u, input, "alpha")?;
            let inner = expect_orset(u, &elem, "alpha")?;
            Ok(SType::orset(SType::set(inner)))
        }
        Morphism::OrToSet => {
            let elem = expect_orset(u, input, "ortoset")?;
            Ok(SType::set(elem))
        }
        Morphism::SetToOr => {
            let elem = expect_set(u, input, "settoor")?;
            Ok(SType::orset(elem))
        }
        Morphism::Powerset => {
            let elem = expect_set(u, input, "powerset")?;
            Ok(SType::set(SType::set(elem)))
        }
        Morphism::Normalize => {
            let concrete = u.resolve(input).to_type()?;
            Ok(SType::from_type(&concrete.normal_form()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morphism::Morphism as M;
    use or_object::Value;

    #[test]
    fn identity_is_polymorphic() {
        let t = infer(&M::Id).unwrap();
        assert_eq!(t.dom, t.cod);
        assert!(matches!(t.dom, SType::Var(_)));
    }

    #[test]
    fn alpha_has_its_figure_1_type() {
        let t = infer(&M::Alpha).unwrap();
        assert_eq!(t.to_string(), "{<'t0>} -> <{'t0}>");
    }

    #[test]
    fn composition_propagates_constraints() {
        // or_mu ∘ ormap(or_eta) : <a> -> <a>
        let m = M::compose(M::OrMu, M::ormap(M::OrEta));
        let t = infer(&m).unwrap();
        assert_eq!(t.dom, t.cod);
        assert!(matches!(t.dom, SType::OrSet(_)));
    }

    #[test]
    fn ill_typed_composition_is_rejected() {
        // mu ∘ or_eta : flattening a set after building an or-set
        let m = M::compose(M::Mu, M::OrEta);
        assert!(infer(&m).is_err());
    }

    #[test]
    fn cond_branches_must_agree() {
        let good = M::cond(
            M::Prim(Prim::Leq),
            M::constant(Value::Int(1)),
            M::constant(Value::Int(2)),
        );
        assert!(infer(&good).is_ok());
        let bad = M::cond(
            M::Prim(Prim::Leq),
            M::constant(Value::Int(1)),
            M::constant(Value::Bool(true)),
        );
        assert!(infer(&bad).is_err());
    }

    #[test]
    fn normalize_is_not_polymorphic_but_checks_monomorphically() {
        assert!(infer(&M::Normalize).is_err());
        let input = Type::prod(Type::set(Type::orset(Type::Int)), Type::orset(Type::Int));
        let out = output_type(&M::Normalize, &input).unwrap();
        assert_eq!(
            out,
            Type::orset(Type::prod(Type::set(Type::Int), Type::Int))
        );
    }

    #[test]
    fn output_type_of_the_papers_cheap_design_query() {
        // or_mu ∘ ormap(cond(ischeap, or_eta, K<> ∘ !)) ∘ normalize
        // over a database whose designs are integer costs (Section 2).
        let ischeap = M::pair(M::Id, M::constant(Value::Int(100))).then(M::Prim(Prim::Leq));
        let query = M::Normalize
            .then(M::ormap(M::cond(
                ischeap,
                M::OrEta,
                M::KEmptyOrSet.after_bang(),
            )))
            .then(M::OrMu);
        let input = Type::orset(Type::orset(Type::Int));
        let out = output_type(&query, &input).unwrap();
        assert_eq!(out, Type::orset(Type::Int));
    }

    #[test]
    fn output_type_checks_simple_pipeline() {
        // normalize a pair and keep the first components:
        // ormap(pi1) ∘ normalize : {<int>} * <bool> -> <{int}>
        let m = M::Normalize.then(M::ormap(M::Proj1));
        let input = Type::prod(Type::set(Type::orset(Type::Int)), Type::orset(Type::Bool));
        let out = output_type(&m, &input).unwrap();
        assert_eq!(out, Type::orset(Type::set(Type::Int)));
    }

    #[test]
    fn empty_set_constant_defaults_to_unit_when_unconstrained() {
        let m = M::KEmptySet;
        let out = output_type(&m, &Type::Unit).unwrap();
        assert_eq!(out, Type::set(Type::Unit));
    }

    #[test]
    fn empty_set_constant_gets_constrained_by_context() {
        // cond(leq, eta, K{} ∘ !) : int*int -> {int*int}?  The branches force
        // the empty set to have element type int*int.
        let m = M::cond(M::Prim(Prim::Leq), M::Eta, M::KEmptySet.after_bang());
        let input = Type::prod(Type::Int, Type::Int);
        let out = output_type(&m, &input).unwrap();
        assert_eq!(out, Type::set(Type::prod(Type::Int, Type::Int)));
    }

    #[test]
    fn projection_requires_a_product() {
        assert!(output_type(&M::Proj1, &Type::Int).is_err());
        assert_eq!(
            output_type(&M::Proj1, &Type::prod(Type::Int, Type::Bool)).unwrap(),
            Type::Int
        );
    }

    #[test]
    fn powerset_type() {
        let t = infer(&M::Powerset).unwrap();
        assert_eq!(t.to_string(), "{'t0} -> {{'t0}}");
    }

    #[test]
    fn value_leq_is_polymorphic_equality_like() {
        let t = infer(&M::Prim(Prim::ValueLeq)).unwrap();
        assert!(matches!(t.cod, SType::Bool));
    }
}
