//! Normalization: the passage from the structural to the conceptual level
//! (Section 4 of the paper).
//!
//! Two implementations are provided and cross-checked:
//!
//! * [`normalize_value`] — a direct recursive computation of the conceptual
//!   denotations of an object.  It is the production entry point (used by the
//!   `normalize` primitive of or-NRA⁺) and runs in time proportional to the
//!   size of its output.
//! * [`normalize_with_strategy`] — the paper's own construction: convert the
//!   object to its multiset form `o^d`, repeatedly apply the object-level
//!   functions associated with the type rewrite rules (`or_rho2`, `or_rho1`,
//!   `or_mu`, `alpha_d`) at redex positions chosen by a [`RewriteStrategy`],
//!   and finally convert multisets back to sets.  The Coherence Theorem
//!   (Theorem 4.2) says the result does not depend on the strategy; the
//!   [`crate::coherence`] module and experiment E5 verify this by running
//!   many strategies and comparing.

use or_object::alpha::{alpha_bag, ChoiceFunctions};
use or_object::types::{apply_rule_at, redexes, Redex, RewriteRule};
use or_object::{Type, Value};

use crate::error::EvalError;

// ---------------------------------------------------------------------------
// Direct normalization
// ---------------------------------------------------------------------------

/// The conceptual denotations of an object: the list of or-set-free objects
/// it can stand for, with multiplicities arising from distinct structural
/// positions (this is exactly the multiset semantics of Section 4).
///
/// * a base value denotes itself;
/// * a pair denotes every pairing of denotations of its components;
/// * a set `{x₁,…,xₙ}` denotes every set `{d₁,…,dₙ}` with `dᵢ` a denotation
///   of `xᵢ` (one choice per *position*, so distinct elements with common
///   denotations still contribute all combinations);
/// * an or-set denotes anything one of its elements denotes;
/// * an object containing an empty or-set denotes nothing (inconsistency).
pub fn denotations(v: &Value) -> Vec<Value> {
    match v {
        x if x.is_base() => vec![x.clone()],
        Value::Pair(a, b) => {
            let da = denotations(a);
            let db = denotations(b);
            let mut out = Vec::with_capacity(da.len() * db.len());
            for x in &da {
                for y in &db {
                    out.push(Value::pair(x.clone(), y.clone()));
                }
            }
            out
        }
        Value::Set(items) | Value::Bag(items) => {
            let per_item: Vec<Vec<Value>> = items.iter().map(denotations).collect();
            let mut out = Vec::new();
            for choice in ChoiceFunctions::new(&per_item) {
                out.push(Value::set(choice.into_iter().cloned()));
            }
            out
        }
        Value::OrSet(items) => items.iter().flat_map(denotations).collect(),
        _ => unreachable!("all shapes covered"),
    }
}

/// The number of conceptual denotations of `v` without materializing them
/// (counted with multiplicity, i.e. before the final duplicate removal).
pub fn denotation_count(v: &Value) -> u128 {
    match v {
        x if x.is_base() => 1,
        Value::Pair(a, b) => denotation_count(a).saturating_mul(denotation_count(b)),
        Value::Set(items) | Value::Bag(items) => items
            .iter()
            .map(denotation_count)
            .fold(1u128, |acc, n| acc.saturating_mul(n)),
        Value::OrSet(items) => items.iter().map(denotation_count).sum(),
        _ => unreachable!("all shapes covered"),
    }
}

/// `normalize : t → nf(t)` — the conceptual value of an object.
///
/// If the object's type does not involve or-sets the object is returned
/// unchanged (its normal form is itself); otherwise the result is the or-set
/// of its denotations.  Because the input's type is not passed explicitly,
/// the or-set-free case is detected structurally: an object is returned
/// unchanged iff it contains no or-set constructor.
pub fn normalize_value(v: &Value) -> Value {
    if !v.contains_orset() {
        return v.clone();
    }
    Value::orset(denotations(v))
}

/// Type-aware normalization: `normalize_{ty} : ty → nf(ty)`.
///
/// This differs from [`normalize_value`] only on objects whose *type*
/// mentions or-sets while the object itself happens to contain none (e.g.
/// the empty set at type `{<int>}`): the paper's `normalize` still produces
/// an or-set wrapper (`<{}>`) in that case, because `nf({<int>}) = <{int}>`.
/// Cross-checks against [`normalize_with_strategy`] use this variant.
pub fn normalize_value_typed(v: &Value, ty: &Type) -> Value {
    if !ty.contains_orset() {
        return v.clone();
    }
    Value::orset(denotations(v))
}

/// The `m(x)` measure of Section 6: the number of elements of
/// `normalize(or_eta(x))`, i.e. the number of conceptually possible values of
/// `x` (after duplicate elimination).
pub fn possibility_count(v: &Value) -> u64 {
    let mut d = denotations(v);
    d.sort();
    d.dedup();
    d.len() as u64
}

// ---------------------------------------------------------------------------
// Strategy-driven normalization (the paper's rewriting construction)
// ---------------------------------------------------------------------------

/// How to choose the next redex during strategy-driven normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteStrategy {
    /// Always pick the first redex in the deterministic outermost-first,
    /// left-to-right enumeration.
    Outermost,
    /// Always pick the last redex in that enumeration (innermost-biased).
    Innermost,
    /// Pick the redex whose path is deepest (ties broken by enumeration
    /// order).
    Deepest,
    /// Pseudo-random choice seeded by the given value (deterministic per
    /// seed, different seeds explore different reduction orders).
    Seeded(u64),
}

impl RewriteStrategy {
    /// A small portfolio of strategies used by the coherence checks.
    pub fn portfolio() -> Vec<RewriteStrategy> {
        vec![
            RewriteStrategy::Outermost,
            RewriteStrategy::Innermost,
            RewriteStrategy::Deepest,
            RewriteStrategy::Seeded(1),
            RewriteStrategy::Seeded(7),
        ]
    }

    fn choose(&self, step: u64, redexes: &[Redex]) -> usize {
        debug_assert!(!redexes.is_empty());
        match self {
            RewriteStrategy::Outermost => 0,
            RewriteStrategy::Innermost => redexes.len() - 1,
            RewriteStrategy::Deepest => redexes
                .iter()
                .enumerate()
                .max_by_key(|(i, r)| (r.path.len(), usize::MAX - i))
                .map(|(i, _)| i)
                .unwrap_or(0),
            RewriteStrategy::Seeded(seed) => {
                // splitmix64-style hash of (seed, step) for a deterministic
                // but order-scrambling choice
                let mut z = seed ^ (step.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z % redexes.len() as u64) as usize
            }
        }
    }
}

/// A single step of the object-level rewrite system: the function associated
/// with `rule` applied at type-path `path` of a value of type `ty`.
///
/// Returns the rewritten value; the caller is responsible for updating the
/// type with [`apply_rule_at`].
pub fn apply_function_at(
    v: &Value,
    ty: &Type,
    path: &[u8],
    rule: RewriteRule,
) -> Result<Value, EvalError> {
    if path.is_empty() {
        return apply_function_root(v, rule);
    }
    let (step, rest) = (path[0], &path[1..]);
    match (ty, step) {
        (Type::Prod(t1, _), 0) => match v.as_pair() {
            Some((a, b)) => Ok(Value::pair(
                apply_function_at(a, t1, rest, rule)?,
                b.clone(),
            )),
            None => Err(EvalError::shape("dapp/pair", v)),
        },
        (Type::Prod(_, t2), 1) => match v.as_pair() {
            Some((a, b)) => Ok(Value::pair(
                a.clone(),
                apply_function_at(b, t2, rest, rule)?,
            )),
            None => Err(EvalError::shape("dapp/pair", v)),
        },
        (Type::Bag(t), 0) | (Type::Set(t), 0) => match v.elements() {
            Some(items) => {
                let mapped: Result<Vec<Value>, EvalError> = items
                    .iter()
                    .map(|x| apply_function_at(x, t, rest, rule))
                    .collect();
                // dmap preserves multiplicities: rebuild the same collection
                // kind as the input
                Ok(match v {
                    Value::Bag(_) => Value::bag(mapped?),
                    _ => Value::set(mapped?),
                })
            }
            None => Err(EvalError::shape("dapp/dmap", v)),
        },
        (Type::OrSet(t), 0) => match v {
            Value::OrSet(items) => {
                let mapped: Result<Vec<Value>, EvalError> = items
                    .iter()
                    .map(|x| apply_function_at(x, t, rest, rule))
                    .collect();
                Ok(Value::orset(mapped?))
            }
            _ => Err(EvalError::shape("dapp/ormap", v)),
        },
        _ => Err(EvalError::Shape {
            operator: "dapp".to_string(),
            value: format!("invalid path {path:?} into type {ty}"),
        }),
    }
}

fn apply_function_root(v: &Value, rule: RewriteRule) -> Result<Value, EvalError> {
    match rule {
        RewriteRule::PairRight => match v.as_pair() {
            // or_rho2 : t × <s> → <t × s>
            Some((a, Value::OrSet(items))) => Ok(Value::orset(
                items.iter().map(|b| Value::pair(a.clone(), b.clone())),
            )),
            _ => Err(EvalError::shape("or_rho2", v)),
        },
        RewriteRule::PairLeft => match v.as_pair() {
            // or_rho1 : <t> × s → <t × s>
            Some((Value::OrSet(items), b)) => Ok(Value::orset(
                items.iter().map(|a| Value::pair(a.clone(), b.clone())),
            )),
            _ => Err(EvalError::shape("or_rho1", v)),
        },
        RewriteRule::OrFlatten => match v {
            Value::OrSet(items) => {
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::OrSet(inner) => out.extend(inner.iter().cloned()),
                        other => return Err(EvalError::shape("or_mu", other)),
                    }
                }
                Ok(Value::orset(out))
            }
            other => Err(EvalError::shape("or_mu", other)),
        },
        RewriteRule::SetAlpha => match v {
            Value::Bag(_) => alpha_bag(v).map_err(|e| EvalError::Primitive {
                primitive: "alpha_d".to_string(),
                message: e.to_string(),
            }),
            Value::Set(_) => or_object::alpha::alpha_set(v).map_err(|e| EvalError::Primitive {
                primitive: "alpha".to_string(),
                message: e.to_string(),
            }),
            other => Err(EvalError::shape("alpha", other)),
        },
    }
}

/// A record of one normalization run performed by
/// [`normalize_with_strategy`].
#[derive(Debug, Clone)]
pub struct NormalizationTrace {
    /// The redexes applied, in order.
    pub steps: Vec<Redex>,
    /// The final (normal-form) type of the multiset-typed intermediate.
    pub final_type: Type,
}

/// Normalize `v : ty` by the paper's construction: convert to multisets,
/// rewrite to the normal form of the type using `strategy` to choose redexes,
/// then remove duplicates.  Returns the normal form and the trace of applied
/// redexes.
pub fn normalize_with_strategy(
    v: &Value,
    ty: &Type,
    strategy: RewriteStrategy,
) -> Result<(Value, NormalizationTrace), EvalError> {
    if !v.has_type(ty) {
        return Err(EvalError::Type(crate::error::TypeError::Shape {
            message: format!("value {v} does not have declared type {ty}"),
        }));
    }
    let mut cur_v = v.to_bagged();
    let mut cur_t = ty.to_dup();
    let mut steps = Vec::new();
    let mut counter: u64 = 0;
    loop {
        let reds = redexes(&cur_t);
        if reds.is_empty() {
            break;
        }
        let idx = strategy.choose(counter, &reds);
        let r = reds[idx].clone();
        cur_v = apply_function_at(&cur_v, &cur_t, &r.path, r.rule)?;
        cur_t = apply_rule_at(&cur_t, &r.path, r.rule).ok_or_else(|| EvalError::Shape {
            operator: "type rewrite".to_string(),
            value: format!("rule {:?} inapplicable at {:?} in {cur_t}", r.rule, r.path),
        })?;
        steps.push(r);
        counter += 1;
    }
    Ok((
        cur_v.to_setted(),
        NormalizationTrace {
            steps,
            final_type: cur_t,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Section 4:
    /// `x = ([<1,2>, <3>], <1,2>) : {<int>} × <int>`.
    fn section4_example() -> (Value, Type) {
        let v = Value::pair(
            Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]),
            Value::int_orset([1, 2]),
        );
        let t = Type::prod(Type::set(Type::orset(Type::Int)), Type::orset(Type::Int));
        (v, t)
    }

    fn section4_expected() -> Value {
        // <({1,3},1), ({1,3},2), ({2,3},1), ({2,3},2)>
        Value::orset([
            Value::pair(Value::int_set([1, 3]), Value::Int(1)),
            Value::pair(Value::int_set([1, 3]), Value::Int(2)),
            Value::pair(Value::int_set([2, 3]), Value::Int(1)),
            Value::pair(Value::int_set([2, 3]), Value::Int(2)),
        ])
    }

    #[test]
    fn direct_normalization_matches_the_section_4_example() {
        let (v, _) = section4_example();
        assert_eq!(normalize_value(&v), section4_expected());
    }

    #[test]
    fn strategy_normalization_matches_the_section_4_example() {
        let (v, t) = section4_example();
        for strategy in RewriteStrategy::portfolio() {
            let (out, trace) = normalize_with_strategy(&v, &t, strategy).unwrap();
            assert_eq!(out, section4_expected(), "strategy {strategy:?}");
            assert_eq!(trace.final_type, t.to_dup().normal_form());
            assert!(!trace.steps.is_empty());
        }
    }

    #[test]
    fn normalization_of_orset_free_objects_is_identity() {
        let v = Value::pair(Value::int_set([1, 2]), Value::Int(3));
        assert_eq!(normalize_value(&v), v);
    }

    #[test]
    fn empty_orset_collapses_everything() {
        // a set containing an inconsistent element denotes nothing
        let v = Value::set([Value::int_orset([1, 2]), Value::empty_orset()]);
        assert_eq!(normalize_value(&v), Value::empty_orset());
        let t = Type::set(Type::orset(Type::Int));
        let (out, _) = normalize_with_strategy(&v, &t, RewriteStrategy::Outermost).unwrap();
        assert_eq!(out, Value::empty_orset());
    }

    #[test]
    fn duplicates_from_distinct_positions_are_preserved() {
        // { <<1,2>>, <<1>,<2>> } : {<<int>>} — both elements normalize to the
        // or-set <1,2>, but as *positions* they are distinct, so the sets
        // {1}, {1,2}, {2} are all possible (the multiset subtlety of §4).
        let v = Value::set([
            Value::orset([Value::int_orset([1, 2])]),
            Value::orset([Value::int_orset([1]), Value::int_orset([2])]),
        ]);
        let expected = Value::orset([
            Value::int_set([1]),
            Value::int_set([1, 2]),
            Value::int_set([2]),
        ]);
        assert_eq!(normalize_value(&v), expected);
        let t = Type::set(Type::orset(Type::orset(Type::Int)));
        for strategy in RewriteStrategy::portfolio() {
            let (out, _) = normalize_with_strategy(&v, &t, strategy).unwrap();
            assert_eq!(out, expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn possibility_count_matches_normal_form_cardinality() {
        let (v, _) = section4_example();
        assert_eq!(possibility_count(&v), 4);
        let w = or_object::generate::Generator::tightness_witness(3);
        assert_eq!(possibility_count(&w), 27);
    }

    #[test]
    fn denotation_count_agrees_with_denotations_len() {
        let (v, _) = section4_example();
        assert_eq!(denotation_count(&v), denotations(&v).len() as u128);
        let w = Value::orset([Value::int_orset([1, 2]), Value::int_orset([2, 3])]);
        assert_eq!(denotation_count(&w), 4);
    }

    #[test]
    fn strategy_normalization_rejects_ill_typed_input() {
        let v = Value::Int(1);
        let t = Type::orset(Type::Int);
        assert!(normalize_with_strategy(&v, &t, RewriteStrategy::Outermost).is_err());
    }

    #[test]
    fn normalization_is_idempotent_conceptually() {
        let (v, _) = section4_example();
        let once = normalize_value(&v);
        let twice = normalize_value(&once);
        assert_eq!(once, twice);
    }
}
