//! Static plan-invariant verification: the typed checker behind
//! `or-analyze verify-plans` and the engine's debug/checked-mode gate.
//!
//! The paper's correctness story rests on side conditions that the engine
//! historically enforced only at runtime (`debug_assert`s) or in prose
//! (`docs/ENGINE.md`): Theorem 5.1's preservation preconditions for
//! commuting operators past α-expansion, canonical ordering at merge
//! points, and budget admission at the one physically exponential
//! operator.  This module checks those side conditions **statically**, on a
//! [`PhysicalPlan`], without executing anything: it infers row types
//! bottom-up (reusing [`crate::infer::output_type`]) and walks the plan
//! against a numbered rule catalog.
//!
//! ## The rule catalog
//!
//! Each rule has a stable identifier (`V01`…) used in error messages,
//! tests, and `docs/ANALYZE.md`.  Rules come in two severities:
//! [`Severity::Deny`] violations are definite soundness or admission
//! errors (the engine gate rejects the plan), [`Severity::Warn`] findings
//! are suspicious-but-legal shapes (reported by `or-analyze`, never
//! fatal).
//!
//! | id | severity | rule |
//! |----|----------|------|
//! | V01 | Deny | every `Scan(i)` references a provided input slot |
//! | V02 | Warn | every operator morphism typechecks at its inferred input row type |
//! | V03 | Deny | `Filter`/`Join` predicates produce `bool` |
//! | V04 | Deny | `Flatten` consumes rows of a set type |
//! | V05 | Deny | `Union` arms produce the same row type (canonical id-merge needs one element type) |
//! | V06 | Deny | `AttachEnv` setup produces an `(env, {rows})` pair |
//! | V07 | Warn | `OrExpand` consumes rows that can actually contain or-sets |
//! | V08 | Deny | operators *below* an `OrExpand` satisfy the Theorem 5.1 preservation preconditions |
//! | V09 | Warn | projections below an `OrExpand` carry the consistency proviso |
//! | V10 | Deny | every `OrExpand` has an effective denotation budget (when admission control demands one) |
//!
//! Rules that need a row type are **conservative-accepting**: when the
//! type of a slot is unknown (engine-level verification has no schemas)
//! the typed rules simply do not fire, so the verifier never rejects a
//! plan it cannot reason about — the property the no-false-positive
//! proptests pin down.

use std::fmt;

use or_object::Type;

use crate::infer::output_type;
use crate::morphism::Morphism;
use crate::physical::PhysicalPlan;
use crate::preserve::lossless_preconditions;

/// How severe a rule violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A definite soundness or admission error: the engine gate rejects
    /// the plan.
    Deny,
    /// A suspicious-but-legal plan shape: reported, never fatal.
    Warn,
}

/// The numbered rule catalog (see the module docs for the prose version).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// V01: a `Scan` references an input slot the caller did not provide.
    ScanArity,
    /// V02: an operator morphism does not typecheck at its input row type.
    UntypableMorphism,
    /// V03: a `Filter`/`Join` predicate has a definite non-boolean output.
    NonBooleanPredicate,
    /// V04: `Flatten` applied to rows of a definite non-set type.
    FlattenNonSet,
    /// V05: `Union` arms with definite, different row types.
    UnionTypeMismatch,
    /// V06: an `AttachEnv` setup with a definite non-`(env, {rows})` shape.
    AttachEnvShape,
    /// V07: `OrExpand` over rows whose type cannot contain or-sets.
    ExpandOrFree,
    /// V08: an operator below an `OrExpand` violates the Theorem 5.1
    /// preservation preconditions (it does not commute with α-expansion).
    NonPreservingBelowExpand,
    /// V09: a projection below an `OrExpand` commutes but needs the
    /// consistency proviso, and the verifier was not given that promise.
    ProjectionProviso,
    /// V10: an `OrExpand` without an effective denotation budget under a
    /// configuration that requires admission control.
    UnbudgetedExpansion,
}

impl Rule {
    /// The stable identifier used in error messages, tests and docs.
    pub fn id(self) -> &'static str {
        match self {
            Rule::ScanArity => "V01",
            Rule::UntypableMorphism => "V02",
            Rule::NonBooleanPredicate => "V03",
            Rule::FlattenNonSet => "V04",
            Rule::UnionTypeMismatch => "V05",
            Rule::AttachEnvShape => "V06",
            Rule::ExpandOrFree => "V07",
            Rule::NonPreservingBelowExpand => "V08",
            Rule::ProjectionProviso => "V09",
            Rule::UnbudgetedExpansion => "V10",
        }
    }

    /// The rule's severity.
    pub fn severity(self) -> Severity {
        match self {
            Rule::UntypableMorphism | Rule::ExpandOrFree | Rule::ProjectionProviso => {
                Severity::Warn
            }
            _ => Severity::Deny,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation, located by a slash-separated **plan path** from the
/// root operator (binary children are tagged `left:`/`right:`), e.g.
/// `Filter/OrExpand/left:Scan(#0)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Path of the offending operator from the plan root.
    pub path: String,
    /// Human-readable detail.
    pub message: String,
}

impl Violation {
    /// Is this a [`Severity::Deny`] violation?
    pub fn is_deny(&self) -> bool {
        self.rule.severity() == Severity::Deny
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.rule, self.path, self.message)
    }
}

/// What the verifier knows about the execution context.
///
/// Everything is optional: with no knowledge at all only the structural
/// rules can fire, and the verifier accepts any plan the executor would
/// run.  The more context a caller provides (slot count, row types, the
/// serving layer's budget policy), the more rules engage.
#[derive(Debug, Clone, Default)]
pub struct VerifyConfig {
    /// How many input slots the caller will provide (`None` = unknown).
    pub provided_inputs: Option<usize>,
    /// Row type per input slot (`row_types[i]` types `Scan(i)`'s rows);
    /// missing or `None` entries leave the slot untyped.
    pub row_types: Vec<Option<Type>>,
    /// The configuration-level default denotation budget
    /// (`ExecConfig::or_budget`): an `OrExpand` without its own budget is
    /// still budgeted when this is set.
    pub or_budget: Option<u64>,
    /// Demand an effective budget at every `OrExpand` (rule V10).  Serving
    /// layers with admission control set this; interactive/debug
    /// verification leaves it off.
    pub require_budgets: bool,
    /// The Theorem 5.1 proviso: a promise that no input row contains an
    /// empty or-set.  Mirrors
    /// [`crate::optimize::ExpandPlannerConfig::assume_consistent`]; when
    /// absent, projections below an `OrExpand` are reported under V09.
    pub assume_consistent: bool,
}

impl VerifyConfig {
    /// Context for a caller that knows the slot count but nothing else.
    pub fn with_inputs(provided: usize) -> VerifyConfig {
        VerifyConfig {
            provided_inputs: Some(provided),
            ..VerifyConfig::default()
        }
    }

    /// Attach per-slot row types (schema knowledge).
    pub fn with_row_types(mut self, row_types: Vec<Option<Type>>) -> VerifyConfig {
        self.row_types = row_types;
        self
    }
}

/// Verify `plan` against the rule catalog under `config`.  Returns every
/// finding, [`Severity::Deny`] and [`Severity::Warn`] alike, in plan-walk
/// order; [`first_deny`] picks the one an engine gate should report.
pub fn verify_plan(plan: &PhysicalPlan, config: &VerifyConfig) -> Vec<Violation> {
    let mut violations = Vec::new();
    walk(plan, config, &label(plan), false, &mut violations);
    violations
}

/// The first [`Severity::Deny`] violation, if any — what a gate rejects
/// the plan with.
pub fn first_deny(violations: &[Violation]) -> Option<&Violation> {
    violations.iter().find(|v| v.is_deny())
}

/// A short label for one operator (no children).
fn label(plan: &PhysicalPlan) -> String {
    match plan {
        PhysicalPlan::Scan(i) => format!("Scan(#{i})"),
        PhysicalPlan::Filter { .. } => "Filter".to_string(),
        PhysicalPlan::Project { .. } => "Project".to_string(),
        PhysicalPlan::AttachEnv { .. } => "AttachEnv".to_string(),
        PhysicalPlan::Cartesian { .. } => "Cartesian".to_string(),
        PhysicalPlan::Join { .. } => "Join".to_string(),
        PhysicalPlan::Union { .. } => "Union".to_string(),
        PhysicalPlan::Flatten { .. } => "Flatten".to_string(),
        PhysicalPlan::OrExpand { .. } => "OrExpand".to_string(),
    }
}

fn child_path(parent: &str, side: Option<&str>, child: &PhysicalPlan) -> String {
    match side {
        Some(side) => format!("{parent}/{side}:{}", label(child)),
        None => format!("{parent}/{}", label(child)),
    }
}

fn push(violations: &mut Vec<Violation>, rule: Rule, path: &str, message: impl Into<String>) {
    violations.push(Violation {
        rule,
        path: path.to_string(),
        message: message.into(),
    });
}

/// The expanded row type produced by `OrExpand` over rows of type `t`:
/// exactly the element type of `μ ∘ map(ortoset ∘ normalize)` applied to
/// `{t}` — delegated to the morphism-level inference so the two levels
/// cannot drift apart.
fn expanded_row_type(t: &Type) -> Option<Type> {
    let expand = Morphism::map(Morphism::Normalize.then(Morphism::OrToSet)).then(Morphism::Mu);
    match output_type(&expand, &Type::set(t.clone())) {
        Ok(Type::Set(elem)) => Some(*elem),
        _ => None,
    }
}

/// Check a per-row morphism at a known row type; reports V02 on type
/// errors and returns the output type when inference succeeded.
fn check_morphism(
    what: &str,
    m: &Morphism,
    input: &Type,
    path: &str,
    violations: &mut Vec<Violation>,
) -> Option<Type> {
    match output_type(m, input) {
        Ok(out) => Some(out),
        Err(e) => {
            push(
                violations,
                Rule::UntypableMorphism,
                path,
                format!("{what} `{m}` does not typecheck at row type {input}: {e}"),
            );
            None
        }
    }
}

/// Check the Theorem 5.1 preconditions for a row-level operator that sits
/// **below** an `OrExpand` (rule V08, plus the V09 proviso for
/// projections).  `is_filter` distinguishes the two: per the paper
/// (Section 5) and the expand planner, filters need no consistency
/// promise — an inconsistent row expands to no worlds on either side —
/// while projections that drop components do.
fn check_below_expand(
    what: &str,
    m: &Morphism,
    input: &Type,
    is_filter: bool,
    config: &VerifyConfig,
    path: &str,
    violations: &mut Vec<Violation>,
) {
    match lossless_preconditions(m, input) {
        Ok((_, precondition_violations)) if precondition_violations.is_empty() => {
            if !is_filter && !config.assume_consistent {
                push(
                    violations,
                    Rule::ProjectionProviso,
                    path,
                    format!(
                        "{what} `{m}` below an OrExpand commutes with α-expansion only \
                         for consistent inputs (no empty or-sets), and no consistency \
                         promise was given"
                    ),
                );
            }
        }
        Ok((_, precondition_violations)) => {
            let reasons: Vec<String> = precondition_violations
                .iter()
                .map(|v| format!("`{}`: {}", v.morphism, v.reason))
                .collect();
            push(
                violations,
                Rule::NonPreservingBelowExpand,
                path,
                format!(
                    "{what} `{m}` below an OrExpand does not commute with α-expansion \
                     (Theorem 5.1 preconditions fail: {})",
                    reasons.join("; ")
                ),
            );
        }
        Err(e) => {
            push(
                violations,
                Rule::NonPreservingBelowExpand,
                path,
                format!(
                    "{what} `{m}` below an OrExpand does not typecheck at the \
                     unexpanded row type {input} ({e}), so it cannot commute with \
                     α-expansion"
                ),
            );
        }
    }
}

/// Walk the plan bottom-up.  Returns the inferred row type when known.
/// `below_expand` is true when an `OrExpand` sits anywhere above the
/// current node — the scope in which the Theorem 5.1 rules apply.
fn walk(
    plan: &PhysicalPlan,
    config: &VerifyConfig,
    path: &str,
    below_expand: bool,
    violations: &mut Vec<Violation>,
) -> Option<Type> {
    match plan {
        PhysicalPlan::Scan(i) => {
            if let Some(provided) = config.provided_inputs {
                if *i >= provided {
                    push(
                        violations,
                        Rule::ScanArity,
                        path,
                        format!("scan references input slot {i} but only {provided} inputs are provided"),
                    );
                }
            }
            config.row_types.get(*i).cloned().flatten()
        }
        PhysicalPlan::Filter { predicate, input } => {
            let t = walk(
                input,
                config,
                &child_path(path, None, input),
                below_expand,
                violations,
            );
            if let Some(t) = &t {
                if below_expand {
                    check_below_expand(
                        "filter predicate",
                        predicate,
                        t,
                        true,
                        config,
                        path,
                        violations,
                    );
                }
                match check_morphism("filter predicate", predicate, t, path, violations) {
                    Some(Type::Bool) | None => {}
                    Some(other) => push(
                        violations,
                        Rule::NonBooleanPredicate,
                        path,
                        format!("filter predicate `{predicate}` produces {other}, not bool"),
                    ),
                }
            }
            t
        }
        PhysicalPlan::Project { f, input } => {
            let t = walk(
                input,
                config,
                &child_path(path, None, input),
                below_expand,
                violations,
            );
            let t = t.as_ref()?;
            if below_expand {
                check_below_expand("projection", f, t, false, config, path, violations);
            }
            check_morphism("projection", f, t, path, violations)
        }
        PhysicalPlan::AttachEnv { setup, input } => {
            let t = walk(
                input,
                config,
                &child_path(path, None, input),
                below_expand,
                violations,
            );
            let t = t.as_ref()?;
            // setup : {t} → (env, {t'}); the operator then streams (env, t')
            // pairs, so the output row type is env × t'.
            match check_morphism(
                "AttachEnv setup",
                setup,
                &Type::set(t.clone()),
                path,
                violations,
            ) {
                Some(Type::Prod(env, rows)) => match *rows {
                    Type::Set(elem) => Some(Type::prod(*env, *elem)),
                    other => {
                        push(
                            violations,
                            Rule::AttachEnvShape,
                            path,
                            format!(
                                "AttachEnv setup `{setup}` must produce (env, {{rows}}); \
                                 its second component is {other}, not a set"
                            ),
                        );
                        None
                    }
                },
                Some(other) => {
                    push(
                        violations,
                        Rule::AttachEnvShape,
                        path,
                        format!(
                            "AttachEnv setup `{setup}` must produce an (env, {{rows}}) \
                             pair, got {other}"
                        ),
                    );
                    None
                }
                None => None,
            }
        }
        PhysicalPlan::Cartesian { left, right } => {
            let lt = walk(
                left,
                config,
                &child_path(path, Some("left"), left),
                below_expand,
                violations,
            );
            let rt = walk(
                right,
                config,
                &child_path(path, Some("right"), right),
                below_expand,
                violations,
            );
            Some(Type::prod(lt?, rt?))
        }
        PhysicalPlan::Join {
            predicate,
            left,
            right,
        } => {
            let lt = walk(
                left,
                config,
                &child_path(path, Some("left"), left),
                below_expand,
                violations,
            );
            let rt = walk(
                right,
                config,
                &child_path(path, Some("right"), right),
                below_expand,
                violations,
            );
            let row = Type::prod(lt?, rt?);
            match check_morphism("join predicate", predicate, &row, path, violations) {
                Some(Type::Bool) | None => {}
                Some(other) => push(
                    violations,
                    Rule::NonBooleanPredicate,
                    path,
                    format!("join predicate `{predicate}` produces {other}, not bool"),
                ),
            }
            Some(row)
        }
        PhysicalPlan::Union { left, right } => {
            let lt = walk(
                left,
                config,
                &child_path(path, Some("left"), left),
                below_expand,
                violations,
            );
            let rt = walk(
                right,
                config,
                &child_path(path, Some("right"), right),
                below_expand,
                violations,
            );
            match (lt, rt) {
                (Some(l), Some(r)) => {
                    if l != r {
                        push(
                            violations,
                            Rule::UnionTypeMismatch,
                            path,
                            format!(
                                "union arms produce different row types ({l} vs {r}); \
                                 the canonical id-merge requires one element type"
                            ),
                        );
                        None
                    } else {
                        Some(l)
                    }
                }
                _ => None,
            }
        }
        PhysicalPlan::Flatten { input } => {
            let t = walk(
                input,
                config,
                &child_path(path, None, input),
                below_expand,
                violations,
            );
            match t? {
                Type::Set(elem) => Some(*elem),
                other => {
                    push(
                        violations,
                        Rule::FlattenNonSet,
                        path,
                        format!("Flatten expects rows of a set type, got {other}"),
                    );
                    None
                }
            }
        }
        PhysicalPlan::OrExpand { budget, input, .. } => {
            if config.require_budgets && budget.or(config.or_budget).is_none() {
                push(
                    violations,
                    Rule::UnbudgetedExpansion,
                    path,
                    "OrExpand has no per-row denotation budget and the configuration \
                     provides no default (`ExecConfig::or_budget`): unbounded-output \
                     operators must pass budget admission",
                );
            }
            // everything under this node is "below an OrExpand"
            let t = walk(
                input,
                config,
                &child_path(path, None, input),
                true,
                violations,
            );
            let t = t?;
            if !t.contains_orset() {
                push(
                    violations,
                    Rule::ExpandOrFree,
                    path,
                    format!(
                        "OrExpand over rows of type {t}, which cannot contain or-sets: \
                         the expansion is the identity (plus dedup cost)"
                    ),
                );
            }
            expanded_row_type(&t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morphism::{Morphism as M, Prim};
    use or_object::Value;

    fn typed(row_types: Vec<Type>) -> VerifyConfig {
        let provided = row_types.len();
        VerifyConfig::with_inputs(provided)
            .with_row_types(row_types.into_iter().map(Some).collect())
    }

    fn ids(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule.id()).collect()
    }

    #[test]
    fn well_typed_pipeline_is_clean() {
        // select cost ≤ 30, keep ids — the e13 scan shape.
        let cheap = M::Proj2
            .then(M::pair(M::Id, M::constant(Value::Int(30))))
            .then(M::Prim(Prim::Leq));
        let plan = PhysicalPlan::scan(0).filter(cheap).project(M::Proj1);
        let config = typed(vec![Type::prod(Type::Int, Type::Int)]);
        assert_eq!(verify_plan(&plan, &config), Vec::new());
    }

    #[test]
    fn scan_arity_is_v01() {
        let plan = PhysicalPlan::scan(3);
        let config = VerifyConfig::with_inputs(1);
        let violations = verify_plan(&plan, &config);
        assert_eq!(ids(&violations), vec!["V01"]);
        assert!(first_deny(&violations).is_some());
        assert_eq!(violations[0].path, "Scan(#3)");
    }

    #[test]
    fn non_boolean_predicate_is_v03() {
        // Proj1 at (int, int) rows is an int, not a predicate.
        let plan = PhysicalPlan::scan(0).filter(M::Proj1);
        let config = typed(vec![Type::prod(Type::Int, Type::Int)]);
        let violations = verify_plan(&plan, &config);
        assert_eq!(ids(&violations), vec!["V03"]);
    }

    #[test]
    fn flatten_over_non_set_rows_is_v04() {
        let plan = PhysicalPlan::scan(0).flatten();
        let config = typed(vec![Type::Int]);
        assert_eq!(ids(&verify_plan(&plan, &config)), vec!["V04"]);
    }

    #[test]
    fn union_arm_mismatch_is_v05() {
        let plan = PhysicalPlan::scan(0).union_with(PhysicalPlan::scan(1));
        let config = typed(vec![Type::Int, Type::prod(Type::Int, Type::Int)]);
        assert_eq!(ids(&verify_plan(&plan, &config)), vec!["V05"]);
    }

    #[test]
    fn bad_attach_env_shape_is_v06() {
        // Id : {t} → {t} is not an (env, {rows}) pair.
        let plan = PhysicalPlan::scan(0).attach_env(M::Id);
        let config = typed(vec![Type::Int]);
        assert_eq!(ids(&verify_plan(&plan, &config)), vec!["V06"]);
    }

    #[test]
    fn expansion_of_or_free_rows_is_v07_warn_only() {
        let plan = PhysicalPlan::scan(0).or_expand();
        let config = typed(vec![Type::Int]);
        let violations = verify_plan(&plan, &config);
        assert_eq!(ids(&violations), vec!["V07"]);
        assert!(first_deny(&violations).is_none());
    }

    #[test]
    fn non_preserving_filter_below_expand_is_v08() {
        // Structural equality over a pair of or-sets is exactly the
        // counterexample class of Section 5: normalization erases the
        // structure it inspects, so pushing it below the expansion is
        // unsound.
        let row = Type::prod(Type::orset(Type::Int), Type::orset(Type::Int));
        let plan = PhysicalPlan::scan(0).filter(M::Eq).or_expand();
        let config = typed(vec![row]);
        let violations = verify_plan(&plan, &config);
        assert!(
            ids(&violations).contains(&"V08"),
            "expected V08 in {violations:?}"
        );
        assert!(first_deny(&violations).is_some());
    }

    #[test]
    fn preserving_filter_below_expand_is_clean() {
        // The e13_planned shape after the push: the filter reads only the
        // or-free id field, so it commutes (Theorem 5.1).
        let row = Type::prod(Type::Int, Type::orset(Type::Int));
        let keep = M::Proj1
            .then(M::pair(M::Id, M::constant(Value::Int(10))))
            .then(M::Prim(Prim::Leq));
        let plan = PhysicalPlan::scan(0).filter(keep).or_expand();
        let config = typed(vec![row]);
        assert_eq!(verify_plan(&plan, &config), Vec::new());
    }

    #[test]
    fn projection_below_expand_without_proviso_is_v09_warn() {
        let row = Type::prod(Type::Int, Type::orset(Type::Int));
        let plan = PhysicalPlan::scan(0).project(M::Proj2).or_expand();
        let config = typed(vec![row]);
        let violations = verify_plan(&plan, &config);
        assert_eq!(ids(&violations), vec!["V09"]);
        assert!(first_deny(&violations).is_none());
        // with the consistency promise, the shape is clean
        let config = VerifyConfig {
            assume_consistent: true,
            ..config
        };
        assert_eq!(verify_plan(&plan, &config), Vec::new());
    }

    #[test]
    fn missing_budget_gate_is_v10() {
        let row = Type::prod(Type::Int, Type::orset(Type::Int));
        let plan = PhysicalPlan::scan(0).or_expand();
        let config = VerifyConfig {
            require_budgets: true,
            ..typed(vec![row.clone()])
        };
        let violations = verify_plan(&plan, &config);
        assert_eq!(ids(&violations), vec!["V10"]);
        // a plan-level budget satisfies the rule …
        let budgeted = PhysicalPlan::scan(0).or_expand_budgeted(64);
        assert_eq!(verify_plan(&budgeted, &config), Vec::new());
        // … and so does a configuration-level default
        let config = VerifyConfig {
            or_budget: Some(1_000),
            ..config
        };
        assert_eq!(verify_plan(&plan, &config), Vec::new());
    }

    #[test]
    fn untyped_slots_disable_typed_rules() {
        // The same malformed shapes, verified without schemas: nothing
        // fires, because the verifier is conservative-accepting.
        let plans = [
            PhysicalPlan::scan(0).filter(M::Proj1),
            PhysicalPlan::scan(0).flatten(),
            PhysicalPlan::scan(0).filter(M::Eq).or_expand(),
        ];
        let config = VerifyConfig::with_inputs(1);
        for plan in &plans {
            assert_eq!(verify_plan(plan, &config), Vec::new(), "plan: {plan}");
        }
    }

    #[test]
    fn filter_above_expand_is_not_below_expand() {
        // Expand first, filter the expanded worlds after: the filter runs
        // at the *expanded* row type and the Theorem 5.1 rules do not
        // apply to it.  Structural equality over the expanded (or-free)
        // pair is a legitimate world-level predicate.
        let row = Type::prod(Type::orset(Type::Int), Type::orset(Type::Int));
        let plan = PhysicalPlan::scan(0).or_expand().filter(M::Eq);
        let config = typed(vec![row]);
        assert_eq!(verify_plan(&plan, &config), Vec::new());
    }

    #[test]
    fn paths_locate_nested_operators() {
        let row = Type::prod(Type::orset(Type::Int), Type::orset(Type::Int));
        let plan = PhysicalPlan::scan(0)
            .filter(M::Eq)
            .or_expand()
            .union_with(PhysicalPlan::scan(1));
        let config = typed(vec![row.clone(), row]);
        let violations = verify_plan(&plan, &config);
        let v08 = violations
            .iter()
            .find(|v| v.rule == Rule::NonPreservingBelowExpand)
            .expect("V08 fires");
        assert_eq!(v08.path, "Union/left:OrExpand/Filter");
    }
}
