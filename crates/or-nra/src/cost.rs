//! Costs of normalization (Section 6).
//!
//! The paper bounds two quantities for an object `x` of size `n = size(x)`
//! (leaves of the tree representation):
//!
//! * the *cardinality* `m(x)` of the normal form:
//!   `m(x) ≤ ∏ (mᵢ + 1)` over the innermost or-sets (Proposition 6.1) and
//!   `m(x) ≤ 3^{n/3}` (Theorem 6.2, tight);
//! * the *size* of the normal form:
//!   `size(normalize(x)) ≤ (n/2)·3^{n/3}` (Theorem 6.3), tight at
//!   `(n/3)·3^{n/3}` for a large class of objects (Theorem 6.5);
//! * consequently `O(log n) ≤ size(y) ≤ n` when `x = normalize(y)`
//!   (Corollary 6.4).
//!
//! This module computes the measured quantities from actual normal forms and
//! the closed-form bounds, so tests and experiment E3/E4 can compare them.

use or_object::Value;

use crate::normalize::{denotation_count, normalize_value, possibility_count};

/// The `m(x)` measure: the number of elements of `normalize(x)` if that is an
/// or-set, and 1 otherwise.
pub fn m_measure(x: &Value) -> u64 {
    if x.contains_orset() {
        possibility_count(x)
    } else {
        1
    }
}

/// The innermost or-sets of `x`: the or-sets none of whose proper sub-objects
/// is itself an or-set (the `v₁,…,v_k` of Proposition 6.1).  Returns their
/// cardinalities `m₁,…,m_k`.
pub fn innermost_orset_cardinalities(x: &Value) -> Vec<usize> {
    fn walk(v: &Value, out: &mut Vec<usize>) {
        match v {
            Value::OrSet(items) => {
                if items.iter().any(Value::contains_orset) {
                    for item in items {
                        walk(item, out);
                    }
                } else {
                    out.push(items.len());
                }
            }
            Value::Pair(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Value::Set(items) | Value::Bag(items) => {
                for item in items {
                    walk(item, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(x, &mut out);
    out
}

/// The product bound of Proposition 6.1: `∏ (mᵢ + 1)` over the innermost
/// or-sets (saturating).  Returns `None` when the object has no or-sets (the
/// proposition's `k ≠ 0` proviso).
pub fn proposition_6_1_bound(x: &Value) -> Option<u128> {
    let ms = innermost_orset_cardinalities(x);
    if ms.is_empty() {
        return None;
    }
    Some(
        ms.iter()
            .fold(1u128, |acc, &m| acc.saturating_mul(m as u128 + 1)),
    )
}

/// The Theorem 6.2 bound `3^{n/3}` as a floating-point number.
pub fn cardinality_bound(n: u64) -> f64 {
    3f64.powf(n as f64 / 3.0)
}

/// Exact check of `m ≤ 3^{n/3}`, i.e. `m³ ≤ 3ⁿ`, using saturating integer
/// arithmetic (no floating-point error for the sizes we measure).
pub fn respects_cardinality_bound(m: u64, n: u64) -> bool {
    let lhs = (m as u128).saturating_pow(3);
    let rhs = 3u128.saturating_pow(n.min(80) as u32);
    if n >= 80 {
        // 3^80 ≈ 1.5e38 saturates u128 only slightly above its max; treat
        // very large sizes as trivially satisfied (the measured m values are
        // far smaller than u128::MAX^{1/3}).
        return true;
    }
    lhs <= rhs
}

/// The Theorem 6.3 bound `(n/2)·3^{n/3}`.
pub fn size_bound(n: u64) -> f64 {
    n as f64 / 2.0 * cardinality_bound(n)
}

/// The Theorem 6.5 tight bound `(n/3)·3^{n/3}` for the restricted class.
pub fn tight_size_bound(n: u64) -> f64 {
    n as f64 / 3.0 * cardinality_bound(n)
}

/// Exact check of `s ≤ (n/2)·3^{n/3}`, i.e. `8·s³ ≤ n³·3ⁿ` (Theorem 6.3).
pub fn respects_size_bound(s: u64, n: u64) -> bool {
    if n >= 70 {
        return true;
    }
    let lhs = 8u128.saturating_mul((s as u128).saturating_pow(3));
    let rhs = (n as u128)
        .saturating_pow(3)
        .saturating_mul(3u128.saturating_pow(n as u32));
    lhs <= rhs
}

// ---------------------------------------------------------------------------
// expansion-cardinality estimation (the expand planner's cost model)
// ---------------------------------------------------------------------------

/// The number of possible worlds a single relation row α-expands into
/// (counted with multiplicity, saturating at `u128::MAX`).  This is the
/// closed-form count of [`crate::lazy::LazyNormalizer::total`] — O(row size),
/// no materialization — and is the per-row quantity the expand planner's
/// cost model is built from.
pub fn row_expansion_count(row: &Value) -> u128 {
    denotation_count(row)
}

/// Aggregate expansion statistics over (a sample of) a relation's rows.
///
/// Produced by [`estimate_expansion`]; consumed by the expand planner in
/// [`crate::optimize`] to choose operator placement and a worker count for
/// `OrExpand`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandEstimate {
    /// Total number of rows in the relation.
    pub rows: usize,
    /// How many rows were actually inspected (≤ `rows`).
    pub sampled: usize,
    /// Estimated total denotations over all rows (the sampled mean scaled to
    /// `rows`, saturating).
    pub total_denotations: u128,
    /// The largest per-row expansion seen in the sample.
    pub max_per_row: u128,
    /// Rows in the sample that contain no or-set (expansion is the identity
    /// for them).
    pub or_free_rows: usize,
}

impl ExpandEstimate {
    /// Mean denotations per row in the sample (1.0 for an empty relation).
    pub fn mean_per_row(&self) -> f64 {
        if self.rows == 0 {
            return 1.0;
        }
        self.total_denotations as f64 / self.rows as f64
    }

    /// How many workers a partition-local expansion of this relation should
    /// use, given `available` hardware threads: enough that every worker has
    /// at least [`ExpandEstimate::MIN_DENOTATIONS_PER_WORKER`] denotations to
    /// produce (thread startup is not free), never more than one worker per
    /// row, and never more than `available`.
    pub fn recommended_workers(&self, available: usize) -> usize {
        let per_worker = u128::from(Self::MIN_DENOTATIONS_PER_WORKER);
        let by_work = self
            .total_denotations
            .checked_div(per_worker)
            .unwrap_or(0)
            .min(available as u128) as usize;
        by_work.clamp(1, available.max(1)).min(self.rows.max(1))
    }

    /// Minimum denotations a worker must have to be worth spawning.
    pub const MIN_DENOTATIONS_PER_WORKER: u64 = 2048;
}

/// Estimate the expansion statistics of `rows` by inspecting at most
/// `sample_cap` rows, evenly spaced (every row when `sample_cap >= rows`).
/// Counting is closed-form per row, so even a full scan is O(total row
/// size); sampling exists for relations whose rows are themselves large.
pub fn estimate_expansion(rows: &[Value], sample_cap: usize) -> ExpandEstimate {
    estimate_expansion_where(rows, sample_cap, |_| true)
}

/// [`estimate_expansion`] for an expansion that only sees the rows
/// satisfying `keep` — the estimator the planner uses after pushing filters
/// below an `OrExpand`: a sampled row failing `keep` contributes **zero**
/// denotations (it is dropped before it can expand), so the extrapolated
/// total reflects the filter's selectivity.
pub fn estimate_expansion_where<F: FnMut(&Value) -> bool>(
    rows: &[Value],
    sample_cap: usize,
    mut keep: F,
) -> ExpandEstimate {
    let sample_cap = sample_cap.max(1);
    let stride = rows.len().div_ceil(sample_cap).max(1);
    let mut sampled = 0usize;
    let mut sum = 0u128;
    let mut max_per_row = 0u128;
    let mut or_free = 0usize;
    let mut i = 0;
    while i < rows.len() {
        sampled += 1;
        if keep(&rows[i]) {
            let n = row_expansion_count(&rows[i]);
            sum = sum.saturating_add(n);
            max_per_row = max_per_row.max(n);
            if !rows[i].contains_orset() {
                or_free += 1;
            }
        }
        i += stride;
    }
    let total = if sampled == 0 {
        0
    } else {
        let mean_num = sum;
        // scale the sampled sum to the full relation (integer arithmetic,
        // saturating): total ≈ sum * rows / sampled
        mean_num
            .saturating_mul(rows.len() as u128)
            .checked_div(sampled as u128)
            .unwrap_or(0)
    };
    ExpandEstimate {
        rows: rows.len(),
        sampled,
        total_denotations: total,
        max_per_row,
        or_free_rows: or_free,
    }
}

/// Summary of the cost measurements for one object (one row of the E3/E4
/// tables).
///
/// The Section 6 bounds are stated for objects that contain no empty sets or
/// or-sets (the proofs exclude them explicitly, since an empty collection has
/// size 0 yet still influences the normal form); `within_bounds` is only
/// meaningful for such objects — see [`measure`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// `size(x)`.
    pub input_size: u64,
    /// `m(x)` — cardinality of the normal form.
    pub cardinality: u64,
    /// `size(normalize(x))`.
    pub normal_form_size: u64,
    /// The Proposition 6.1 product bound (when defined).
    pub product_bound: Option<u128>,
    /// The Theorem 6.2 bound `3^{n/3}`.
    pub cardinality_bound: f64,
    /// The Theorem 6.3 bound `(n/2)·3^{n/3}`.
    pub size_bound: f64,
    /// Whether all applicable bounds hold.
    pub within_bounds: bool,
}

/// Measure an object against the Section 6 bounds.
///
/// For objects containing empty collections the theorems' provisos do not
/// apply and `within_bounds` is reported as `true` unconditionally (the
/// bounds are simply not claimed there).
pub fn measure(x: &Value) -> CostReport {
    let exempt = x.contains_empty_collection();
    let n = x.size();
    let nf = normalize_value(x);
    let cardinality = match &nf {
        Value::OrSet(items) => items.len() as u64,
        _ => 1,
    };
    let normal_form_size = nf.size();
    let product_bound = proposition_6_1_bound(x);
    let card_ok = respects_cardinality_bound(cardinality, n);
    let size_ok = respects_size_bound(normal_form_size, n.max(2));
    let product_ok = match product_bound {
        // `Option::is_none_or` needs Rust 1.82; spelled out for the 1.75 MSRV
        Some(b) => u128::from(cardinality) <= b,
        None => true,
    };
    CostReport {
        input_size: n,
        cardinality,
        normal_form_size,
        product_bound,
        cardinality_bound: cardinality_bound(n),
        size_bound: size_bound(n),
        within_bounds: exempt || (card_ok && size_ok && product_ok),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use or_object::generate::{GenConfig, Generator};

    #[test]
    fn tightness_witness_meets_the_cardinality_bound_exactly() {
        for k in 1..=6usize {
            let x = Generator::tightness_witness(k);
            let n = x.size();
            assert_eq!(n, 3 * k as u64);
            let m = m_measure(&x);
            assert_eq!(m, 3u64.pow(k as u32), "m(x) must be 3^(n/3)");
            assert!(respects_cardinality_bound(m, n));
            // the bound is met with equality: m^3 == 3^n
            assert_eq!((m as u128).pow(3), 3u128.pow(n as u32));
        }
    }

    #[test]
    fn tightness_witness_meets_the_size_bound_of_theorem_6_5() {
        for k in 2..=5usize {
            let x = Generator::tightness_witness(k);
            let n = x.size();
            let nf_size = normalize_value(&x).size();
            assert_eq!(nf_size as f64, tight_size_bound(n), "size = (n/3)*3^(n/3)");
            assert!(respects_size_bound(nf_size, n));
        }
    }

    #[test]
    fn proposition_6_1_bound_holds_on_random_objects() {
        let config = GenConfig {
            max_depth: 4,
            max_width: 3,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(99, config);
        for _ in 0..100 {
            let (_, x) = gen.typed_or_object();
            let m = m_measure(&x);
            if let Some(bound) = proposition_6_1_bound(&x) {
                assert!(
                    u128::from(m) <= bound,
                    "m({x}) = {m} exceeds product bound {bound}"
                );
            }
        }
    }

    #[test]
    fn all_bounds_hold_on_random_objects() {
        let config = GenConfig {
            max_depth: 4,
            max_width: 3,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(123, config);
        for _ in 0..100 {
            let (_, x) = gen.typed_or_object();
            let report = measure(&x);
            assert!(report.within_bounds, "bounds violated for {x}: {report:?}");
        }
    }

    #[test]
    fn corollary_6_4_size_relation() {
        // x = normalize(y) implies size(x) can be exponentially larger than
        // size(y) but never smaller than log-ish; check the upper direction
        // size(y) <= ... trivially and the concrete witness family.
        let y = Generator::tightness_witness(4);
        let x = normalize_value(&y);
        assert!(y.size() <= x.size());
        assert!((x.size() as f64) <= size_bound(y.size()) + 1e-9);
    }

    #[test]
    fn innermost_orsets_of_nested_objects() {
        // <<1,2>, <3>> : the innermost or-sets are <1,2> and <3>
        let x = Value::orset([Value::int_orset([1, 2]), Value::int_orset([3])]);
        let mut ms = innermost_orset_cardinalities(&x);
        ms.sort_unstable();
        assert_eq!(ms, vec![1, 2]);
        // an or-set with no nested or-sets is itself innermost
        assert_eq!(
            innermost_orset_cardinalities(&Value::int_orset([1, 2, 3])),
            vec![3]
        );
    }

    #[test]
    fn objects_without_orsets_have_m_equal_one() {
        let x = Value::pair(Value::int_set([1, 2]), Value::Int(3));
        assert_eq!(m_measure(&x), 1);
        assert_eq!(proposition_6_1_bound(&x), None);
    }

    #[test]
    fn expansion_estimate_is_exact_on_full_scans() {
        // rows with 6, 1, and 0-or-set shapes
        let rows = vec![
            Value::pair(
                Value::Int(0),
                Value::pair(Value::int_orset([1, 2, 3]), Value::int_orset([4, 5])),
            ),
            Value::pair(
                Value::Int(1),
                Value::pair(Value::int_orset([9]), Value::int_orset([8])),
            ),
            Value::pair(Value::Int(2), Value::pair(Value::Int(3), Value::Int(4))),
        ];
        let est = estimate_expansion(&rows, usize::MAX);
        assert_eq!(est.rows, 3);
        assert_eq!(est.sampled, 3);
        assert_eq!(est.total_denotations, 6 + 1 + 1);
        assert_eq!(est.max_per_row, 6);
        assert_eq!(est.or_free_rows, 1);
        assert_eq!(row_expansion_count(&rows[0]), 6);
    }

    #[test]
    fn expansion_estimate_scales_samples_to_the_relation() {
        let rows: Vec<Value> = (0..100)
            .map(|i| Value::pair(Value::Int(i), Value::int_orset([0, 1])))
            .collect();
        let est = estimate_expansion(&rows, 10);
        assert!(est.sampled >= 10 && est.sampled <= 100);
        // every row has exactly 2 denotations; the extrapolation is exact
        assert_eq!(est.total_denotations, 200);
        assert!(est.recommended_workers(8) >= 1);
        // an empty relation is handled
        let empty = estimate_expansion(&[], 4);
        assert_eq!(empty.total_denotations, 0);
        assert_eq!(empty.recommended_workers(8), 1);
    }

    #[test]
    fn recommended_workers_scale_with_estimated_work() {
        let small = ExpandEstimate {
            rows: 10,
            sampled: 10,
            total_denotations: 100,
            max_per_row: 10,
            or_free_rows: 0,
        };
        // not enough work to pay for a second thread
        assert_eq!(small.recommended_workers(16), 1);
        let big = ExpandEstimate {
            rows: 100_000,
            sampled: 64,
            total_denotations: 1 << 20,
            max_per_row: 32,
            or_free_rows: 0,
        };
        assert_eq!(big.recommended_workers(8), 8);
        assert_eq!(big.recommended_workers(1), 1);
    }

    #[test]
    fn bound_functions_are_monotone() {
        for n in 3..40u64 {
            assert!(cardinality_bound(n) < cardinality_bound(n + 1));
            assert!(size_bound(n) < size_bound(n + 1));
            assert!(tight_size_bound(n) <= size_bound(n));
        }
    }
}
