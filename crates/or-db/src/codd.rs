//! Codd tables: importing classical incomplete information into or-sets.
//!
//! Section 3 of the paper recalls that "Codd's tables … can be captured by
//! so-called flat domains which are obtained from unordered sets by adding a
//! unique bottom element (null)".  This module provides that bridge for the
//! design/planning substrate:
//!
//! * a [`CoddTable`] stores rows whose cells are either known base constants
//!   or nulls;
//! * [`CoddTable::to_relation_with_nulls`] imports it verbatim, representing
//!   every null by the flat-domain bottom [`Value::Null`] (ordered by
//!   [`or_object::BaseOrder::FlatWithNull`]);
//! * [`CoddTable::to_relation_with_orsets`] imports it under the *closed
//!   world* reading: every null becomes the or-set of the values occurring in
//!   that column (its "active domain"), so the table becomes an object whose
//!   normal form enumerates the possible completions.

use std::collections::BTreeSet;

use or_object::{Type, Value};

use crate::relation::{Relation, RelationError};
use crate::schema::{Field, Schema, SchemaError};

/// A cell of a Codd table: a known constant or a null.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cell {
    /// A known base constant.
    Known(Value),
    /// An unknown value (Codd null).
    Null,
}

impl Cell {
    /// Convenience constructor for a known integer.
    pub fn int(i: i64) -> Cell {
        Cell::Known(Value::Int(i))
    }

    /// Convenience constructor for a known string.
    pub fn str(s: &str) -> Cell {
        Cell::Known(Value::str(s))
    }
}

/// A table with named, base-typed columns whose cells may be null.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoddTable {
    /// Table name.
    pub name: String,
    columns: Vec<Field>,
    rows: Vec<Vec<Cell>>,
}

impl CoddTable {
    /// Create an empty table.  All column types must be base types.
    pub fn new(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = Field>,
    ) -> Result<CoddTable, SchemaError> {
        let columns: Vec<Field> = columns.into_iter().collect();
        if columns.is_empty() {
            return Err(SchemaError::Empty);
        }
        for c in &columns {
            if !c.ty.is_base() {
                return Err(SchemaError::Mismatch(format!(
                    "Codd table column {} must have a base type, found {}",
                    c.name, c.ty
                )));
            }
        }
        Ok(CoddTable {
            name: name.into(),
            columns,
            rows: Vec::new(),
        })
    }

    /// The columns.
    pub fn columns(&self) -> &[Field] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    pub fn insert(&mut self, row: Vec<Cell>) -> Result<(), SchemaError> {
        if row.len() != self.columns.len() {
            return Err(SchemaError::Mismatch(format!(
                "expected {} cells, got {}",
                self.columns.len(),
                row.len()
            )));
        }
        for (cell, col) in row.iter().zip(self.columns.iter()) {
            if let Cell::Known(v) = cell {
                if !v.has_type(&col.ty) {
                    return Err(SchemaError::Mismatch(format!(
                        "column {} expects {}, got {v}",
                        col.name, col.ty
                    )));
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Fraction of cells that are null (used by workload reports).
    pub fn null_ratio(&self) -> f64 {
        let total: usize = self.rows.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let nulls = self
            .rows
            .iter()
            .flatten()
            .filter(|c| matches!(c, Cell::Null))
            .count();
        nulls as f64 / total as f64
    }

    /// The active domain of a column: the known values occurring in it.
    pub fn active_domain(&self, column: usize) -> Vec<Value> {
        let mut out: BTreeSet<Value> = BTreeSet::new();
        for row in &self.rows {
            if let Cell::Known(v) = &row[column] {
                out.insert(v.clone());
            }
        }
        out.into_iter().collect()
    }

    /// Import as a relation over the same (base-typed) schema, mapping nulls
    /// to the flat-domain bottom `Value::Null`.
    pub fn to_relation_with_nulls(&self) -> Result<Relation, RelationError> {
        let schema = Schema::new(self.columns.iter().cloned())?;
        let mut rel = Relation::new(self.name.clone(), schema);
        for row in &self.rows {
            let values: Vec<Value> = row
                .iter()
                .map(|cell| match cell {
                    Cell::Known(v) => v.clone(),
                    Cell::Null => Value::Null,
                })
                .collect();
            rel.insert(values)?;
        }
        Ok(rel)
    }

    /// Import as a relation in which every column has been lifted to an
    /// or-set type: a known value `v` becomes the singleton `<v>`, a null
    /// becomes the or-set of the column's active domain (closed-world
    /// completion).  Columns whose active domain is empty produce the empty
    /// or-set, i.e. an inconsistency, mirroring the paper's reading of `< >`.
    pub fn to_relation_with_orsets(&self) -> Result<Relation, RelationError> {
        let schema = Schema::new(
            self.columns
                .iter()
                .map(|f| Field::new(f.name.clone(), Type::orset(f.ty.clone()))),
        )?;
        let domains: Vec<Vec<Value>> = (0..self.columns.len())
            .map(|c| self.active_domain(c))
            .collect();
        let mut rel = Relation::new(self.name.clone(), schema);
        for row in &self.rows {
            let values: Vec<Value> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| match cell {
                    Cell::Known(v) => Value::orset([v.clone()]),
                    Cell::Null => Value::orset(domains[i].iter().cloned()),
                })
                .collect();
            rel.insert(values)?;
        }
        Ok(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use or_object::prelude::*;

    fn office_table() -> CoddTable {
        let mut t = CoddTable::new(
            "offices",
            [
                Field::new("name", Type::Str),
                Field::new("office", Type::Int),
            ],
        )
        .unwrap();
        t.insert(vec![Cell::str("Joe"), Cell::int(515)]).unwrap();
        t.insert(vec![Cell::Null, Cell::int(212)]).unwrap();
        t.insert(vec![Cell::str("Mary"), Cell::Null]).unwrap();
        t
    }

    #[test]
    fn construction_validates_columns_and_rows() {
        assert!(CoddTable::new("t", [Field::new("x", Type::set(Type::Int))]).is_err());
        let mut t = CoddTable::new("t", [Field::new("x", Type::Int)]).unwrap();
        assert!(t.insert(vec![Cell::str("oops")]).is_err());
        assert!(t.insert(vec![Cell::int(1), Cell::int(2)]).is_err());
        t.insert(vec![Cell::Null]).unwrap();
        assert_eq!(t.len(), 1);
        assert!((t.null_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn null_import_orders_below_completions() {
        let t = office_table();
        let rel = t.to_relation_with_nulls().unwrap();
        assert_eq!(rel.len(), 3);
        // (null, 212) is less informative than ("Bill", 212) in the flat order
        let partial = Value::pair(Value::Null, Value::Int(212));
        let complete = Value::pair(Value::str("Bill"), Value::Int(212));
        assert!(object_leq(BaseOrder::FlatWithNull, &partial, &complete));
        assert!(rel.records().contains(&partial));
    }

    #[test]
    fn orset_import_uses_active_domains() {
        let t = office_table();
        assert_eq!(
            t.active_domain(0),
            vec![Value::str("Joe"), Value::str("Mary")]
        );
        let rel = t.to_relation_with_orsets().unwrap();
        // the row with the null name now carries the or-set <"Joe","Mary">
        let row = rel
            .records()
            .iter()
            .find(|r| rel.schema().get(r, "office").unwrap() == Value::int_orset([212]))
            .unwrap()
            .clone();
        assert_eq!(
            rel.schema().get(&row, "name").unwrap(),
            Value::orset([Value::str("Joe"), Value::str("Mary")])
        );
    }

    #[test]
    fn orset_import_normalizes_to_all_completions() {
        let t = office_table();
        let rel = t.to_relation_with_orsets().unwrap();
        // name-null row: 2 choices; office-null row: 2 choices (515, 212);
        // fully known row: 1 choice — up to 4 completions, some of which may
        // coincide after set collapse.
        let count = rel.possibility_count();
        assert!(
            (2..=4).contains(&count),
            "unexpected completion count {count}"
        );
    }

    #[test]
    fn null_ratio_reflects_missing_data() {
        let t = office_table();
        assert!((t.null_ratio() - 2.0 / 6.0).abs() < 1e-9);
    }
}
