//! Record schemas over the or-NRA type system.
//!
//! or-NRA has binary products rather than named records, so this module
//! provides the thin "record layer" that a database front end needs: a
//! [`Schema`] is an ordered list of named, typed fields; records are encoded
//! as right-nested pairs (`(f₁, (f₂, (…, fₙ)))`), and field access compiles
//! to a composition of projections.  This is exactly how the design/planning
//! examples of Imielinski–Naqvi–Vadaparty are modelled in the paper's
//! algebra.

use std::fmt;

use or_nra::morphism::Morphism;
use or_object::{Type, Value};

/// A named, typed field of a record schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, ty: Type) -> Field {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// Errors arising from schema operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A field name was not found in the schema.
    UnknownField(String),
    /// A record value did not match the schema.
    Mismatch(String),
    /// The schema has no fields.
    Empty,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownField(name) => write!(f, "unknown field {name}"),
            SchemaError::Mismatch(msg) => write!(f, "record does not match schema: {msg}"),
            SchemaError::Empty => write!(f, "schema has no fields"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// An ordered record schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Create a schema from fields.  At least one field is required.
    pub fn new(fields: impl IntoIterator<Item = Field>) -> Result<Schema, SchemaError> {
        let fields: Vec<Field> = fields.into_iter().collect();
        if fields.is_empty() {
            return Err(SchemaError::Empty);
        }
        Ok(Schema { fields })
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Position of a field by name.
    pub fn position(&self, name: &str) -> Result<usize, SchemaError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| SchemaError::UnknownField(name.to_string()))
    }

    /// The or-NRA object type of one record: right-nested pairs of the field
    /// types (a single field is just its type).
    pub fn record_type(&self) -> Type {
        let mut iter = self.fields.iter().rev();
        let last = iter.next().expect("schema is non-empty").ty.clone();
        iter.fold(last, |acc, f| Type::prod(f.ty.clone(), acc))
    }

    /// The type of a relation over this schema: a set of records.
    pub fn relation_type(&self) -> Type {
        Type::set(self.record_type())
    }

    /// Encode a row (one value per field, in order) as a record value.
    pub fn record(&self, values: Vec<Value>) -> Result<Value, SchemaError> {
        if values.len() != self.fields.len() {
            return Err(SchemaError::Mismatch(format!(
                "expected {} values, got {}",
                self.fields.len(),
                values.len()
            )));
        }
        for (field, value) in self.fields.iter().zip(values.iter()) {
            if !value.has_type(&field.ty) {
                return Err(SchemaError::Mismatch(format!(
                    "field {} expects type {}, got {value}",
                    field.name, field.ty
                )));
            }
        }
        let mut iter = values.into_iter().rev();
        let last = iter.next().expect("schema is non-empty");
        Ok(iter.fold(last, |acc, v| Value::pair(v, acc)))
    }

    /// Decode a record value back into one value per field.
    pub fn explode(&self, record: &Value) -> Result<Vec<Value>, SchemaError> {
        let mut out = Vec::with_capacity(self.fields.len());
        let mut cur = record;
        for i in 0..self.fields.len() {
            if i + 1 == self.fields.len() {
                out.push(cur.clone());
            } else {
                match cur.as_pair() {
                    Some((head, rest)) => {
                        out.push(head.clone());
                        cur = rest;
                    }
                    None => {
                        return Err(SchemaError::Mismatch(format!(
                            "expected a pair at field {}, found {cur}",
                            self.fields[i].name
                        )))
                    }
                }
            }
        }
        Ok(out)
    }

    /// Read a single named field from a record value.
    pub fn get(&self, record: &Value, name: &str) -> Result<Value, SchemaError> {
        let pos = self.position(name)?;
        Ok(self.explode(record)?.swap_remove(pos))
    }

    /// The or-NRA morphism projecting a record onto a named field
    /// (a composition of `π₂`s followed by a `π₁` unless it is the last
    /// field).
    pub fn field_morphism(&self, name: &str) -> Result<Morphism, SchemaError> {
        let pos = self.position(name)?;
        let mut m = Morphism::Id;
        for _ in 0..pos {
            m = m.then(Morphism::Proj2);
        }
        if pos + 1 < self.fields.len() {
            m = m.then(Morphism::Proj1);
        }
        Ok(m)
    }

    /// The pair-spine path of the field at `index` in the record encoding
    /// — the interned mirror of [`Schema::field_morphism`], consumable by
    /// [`or_object::intern::Interner::gather_path`] to slice a whole
    /// column out of interned records in one pass.
    pub fn field_path(&self, index: usize) -> Result<Vec<or_object::intern::Field>, SchemaError> {
        if index >= self.fields.len() {
            return Err(SchemaError::UnknownField(format!("#{index}")));
        }
        let mut path = vec![or_object::intern::Field::Snd; index];
        if index + 1 < self.fields.len() {
            path.push(or_object::intern::Field::Fst);
        }
        Ok(path)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use or_nra::eval::eval;

    fn component_schema() -> Schema {
        Schema::new([
            Field::new("name", Type::Str),
            Field::new("module", Type::orset(Type::Int)),
            Field::new("critical", Type::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn record_type_is_right_nested() {
        let s = component_schema();
        assert_eq!(
            s.record_type(),
            Type::prod(Type::Str, Type::prod(Type::orset(Type::Int), Type::Bool))
        );
        assert_eq!(s.relation_type(), Type::set(s.record_type()));
    }

    #[test]
    fn record_roundtrip() {
        let s = component_schema();
        let values = vec![Value::str("A"), Value::int_orset([4, 7]), Value::Bool(true)];
        let record = s.record(values.clone()).unwrap();
        assert!(record.has_type(&s.record_type()));
        assert_eq!(s.explode(&record).unwrap(), values);
        assert_eq!(s.get(&record, "module").unwrap(), Value::int_orset([4, 7]));
    }

    #[test]
    fn record_validation_errors() {
        let s = component_schema();
        assert!(s.record(vec![Value::str("A")]).is_err());
        assert!(s
            .record(vec![
                Value::Int(1),
                Value::int_orset([1]),
                Value::Bool(true)
            ])
            .is_err());
        assert!(matches!(
            s.get(&Value::Int(1), "nosuch"),
            Err(SchemaError::UnknownField(_))
        ));
    }

    #[test]
    fn field_morphisms_project_correctly() {
        let s = component_schema();
        let record = s
            .record(vec![
                Value::str("A"),
                Value::int_orset([4, 7]),
                Value::Bool(true),
            ])
            .unwrap();
        for field in ["name", "module", "critical"] {
            let m = s.field_morphism(field).unwrap();
            assert_eq!(eval(&m, &record).unwrap(), s.get(&record, field).unwrap());
        }
    }

    #[test]
    fn single_field_schema() {
        let s = Schema::new([Field::new("id", Type::Int)]).unwrap();
        assert_eq!(s.record_type(), Type::Int);
        let r = s.record(vec![Value::Int(3)]).unwrap();
        assert_eq!(r, Value::Int(3));
        assert_eq!(s.field_morphism("id").unwrap(), Morphism::Id);
    }

    #[test]
    fn empty_schema_is_rejected() {
        assert!(matches!(Schema::new([]), Err(SchemaError::Empty)));
    }
}
