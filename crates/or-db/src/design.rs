//! The design-template domain of Imielinski, Naqvi and Vadaparty.
//!
//! The paper's running example (Section 1): "a design template … may indicate
//! that component A can be built by either module B or module C.  Such a
//! template is structurally a complex object whose component A is the or-set
//! containing B and C."  Designers ask *structural* questions ("what are the
//! choices for component A?") and *conceptual* questions ("is there a
//! low-cost completed design?").
//!
//! This module models templates, compiles them to complex objects, and
//! provides both kinds of query — the conceptual ones via eager
//! normalization, lazy normalization, or a direct branch-and-bound search
//! used as a sanity baseline.

use or_nra::lazy::LazyNormalizer;
use or_nra::normalize::{normalize_value_typed, possibility_count};
use or_nra::EvalError;
use or_object::{Type, Value};

/// One way of realizing a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleOption {
    /// Module name.
    pub module: String,
    /// Cost of using this module.
    pub cost: i64,
    /// Supplier of the module.
    pub vendor: String,
}

impl ModuleOption {
    /// Create a module option.
    pub fn new(module: impl Into<String>, cost: i64, vendor: impl Into<String>) -> ModuleOption {
        ModuleOption {
            module: module.into(),
            cost,
            vendor: vendor.into(),
        }
    }

    /// Encode as `(module, (cost, vendor))`.
    pub fn to_value(&self) -> Value {
        Value::pair(
            Value::str(self.module.clone()),
            Value::pair(Value::Int(self.cost), Value::str(self.vendor.clone())),
        )
    }

    /// The object type of an encoded module option.
    pub fn value_type() -> Type {
        Type::prod(Type::Str, Type::prod(Type::Int, Type::Str))
    }
}

/// A component of a design, with its alternative realizations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// The alternative modules that can realize the component.
    pub options: Vec<ModuleOption>,
}

impl Component {
    /// Create a component.
    pub fn new(name: impl Into<String>, options: Vec<ModuleOption>) -> Component {
        Component {
            name: name.into(),
            options,
        }
    }

    /// Encode as `(name, <option, …>)` — the or-set of alternatives.
    pub fn to_value(&self) -> Value {
        Value::pair(
            Value::str(self.name.clone()),
            Value::orset(self.options.iter().map(ModuleOption::to_value)),
        )
    }

    /// The object type of an encoded component.
    pub fn value_type() -> Type {
        Type::prod(Type::Str, Type::orset(ModuleOption::value_type()))
    }
}

/// A design template: a set of components, each with alternatives.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DesignTemplate {
    /// The components of the design.
    pub components: Vec<Component>,
}

/// One fully resolved design: a chosen module (with cost and vendor) per
/// component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedDesign {
    /// `(component, chosen module, cost, vendor)` per component.
    pub choices: Vec<(String, String, i64, String)>,
}

impl CompletedDesign {
    /// Total cost of the design.
    pub fn total_cost(&self) -> i64 {
        self.choices.iter().map(|c| c.2).sum()
    }
}

impl DesignTemplate {
    /// Create a template from components.
    pub fn new(components: Vec<Component>) -> DesignTemplate {
        DesignTemplate { components }
    }

    /// Encode the template as a complex object of type
    /// `{string × <string × (int × string)>}`.
    pub fn to_value(&self) -> Value {
        Value::set(self.components.iter().map(Component::to_value))
    }

    /// The object type of an encoded template.
    pub fn value_type() -> Type {
        Type::set(Component::value_type())
    }

    /// Structural query: the alternatives recorded for a named component.
    pub fn choices_for(&self, component: &str) -> Option<&[ModuleOption]> {
        self.components
            .iter()
            .find(|c| c.name == component)
            .map(|c| c.options.as_slice())
    }

    /// The number of completed designs the template stands for.
    pub fn completed_design_count(&self) -> u64 {
        possibility_count(&self.to_value())
    }

    /// Conceptual query by eager normalization: all completed designs, as the
    /// or-set `normalize(template)`.
    pub fn completed_designs_value(&self) -> Value {
        normalize_value_typed(&self.to_value(), &Self::value_type())
    }

    /// Decode every completed design into a [`CompletedDesign`] (eager;
    /// exponential in the number of components).
    pub fn completed_designs(&self) -> Vec<CompletedDesign> {
        match self.completed_designs_value() {
            Value::OrSet(items) => items.iter().filter_map(decode_completed).collect(),
            _ => Vec::new(),
        }
    }

    /// Conceptual query: is there a completed design with total cost at most
    /// `budget`?  Evaluated lazily: completed designs are enumerated as a
    /// stream and the search stops at the first hit (Section 7's
    /// lazy-evaluation strategy).  Returns the witness and the number of
    /// candidates inspected.
    pub fn exists_design_within_budget(
        &self,
        budget: i64,
    ) -> Result<(Option<CompletedDesign>, u128), EvalError> {
        let mut lazy = LazyNormalizer::new(&self.to_value());
        let (witness, inspected) = lazy.find_witness(|candidate| {
            Ok(decode_completed(candidate).is_some_and(|d| d.total_cost() <= budget))
        })?;
        Ok((witness.as_ref().and_then(decode_completed), inspected))
    }

    /// The cheapest completed design, by exhaustive (lazy, streaming)
    /// enumeration.
    pub fn cheapest_design(&self) -> Option<CompletedDesign> {
        LazyNormalizer::new(&self.to_value())
            .filter_map(|candidate| decode_completed(&candidate))
            .min_by_key(CompletedDesign::total_cost)
    }

    /// A branch-and-bound baseline for [`DesignTemplate::cheapest_design`]
    /// that never materializes or enumerates the normal form; used to
    /// cross-check the or-set pipeline in tests and benchmarks.
    pub fn cheapest_cost_direct(&self) -> Option<i64> {
        self.components
            .iter()
            .map(|c| c.options.iter().map(|o| o.cost).min())
            .sum::<Option<i64>>()
    }
}

/// Decode one element of the normalized template back into a
/// [`CompletedDesign`].
fn decode_completed(candidate: &Value) -> Option<CompletedDesign> {
    let items = match candidate {
        Value::Set(items) => items,
        _ => return None,
    };
    let mut choices = Vec::with_capacity(items.len());
    for item in items {
        let (component, rest) = item.as_pair()?;
        let (module, rest) = rest.as_pair()?;
        let (cost, vendor) = rest.as_pair()?;
        choices.push((
            component.as_str()?.to_string(),
            module.as_str()?.to_string(),
            cost.as_int()?,
            vendor.as_str()?.to_string(),
        ));
    }
    Some(CompletedDesign { choices })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's component-A example, extended with a second component.
    fn template() -> DesignTemplate {
        DesignTemplate::new(vec![
            Component::new(
                "A",
                vec![
                    ModuleOption::new("B", 70, "acme"),
                    ModuleOption::new("C", 40, "globex"),
                ],
            ),
            Component::new(
                "PSU",
                vec![
                    ModuleOption::new("P1", 30, "acme"),
                    ModuleOption::new("P2", 55, "initech"),
                    ModuleOption::new("P3", 90, "globex"),
                ],
            ),
        ])
    }

    #[test]
    fn template_encodes_with_declared_type() {
        let t = template();
        assert!(t.to_value().has_type(&DesignTemplate::value_type()));
    }

    #[test]
    fn structural_query_lists_choices() {
        let t = template();
        let choices = t.choices_for("A").unwrap();
        assert_eq!(choices.len(), 2);
        assert!(t.choices_for("missing").is_none());
    }

    #[test]
    fn conceptual_query_enumerates_completed_designs() {
        let t = template();
        assert_eq!(t.completed_design_count(), 6);
        let designs = t.completed_designs();
        assert_eq!(designs.len(), 6);
        assert!(designs.iter().all(|d| d.choices.len() == 2));
    }

    #[test]
    fn budget_query_finds_a_cheap_design_and_stops_early() {
        let t = template();
        let (witness, inspected) = t.exists_design_within_budget(100).unwrap();
        let witness = witness.expect("a design of cost <= 100 exists");
        assert!(witness.total_cost() <= 100);
        assert!(inspected <= 6);
        // an impossible budget scans everything and finds nothing
        let (none, inspected) = t.exists_design_within_budget(10).unwrap();
        assert!(none.is_none());
        assert_eq!(inspected, 6);
    }

    #[test]
    fn cheapest_design_matches_the_direct_baseline() {
        let t = template();
        let cheapest = t.cheapest_design().unwrap();
        assert_eq!(Some(cheapest.total_cost()), t.cheapest_cost_direct());
        assert_eq!(cheapest.total_cost(), 70);
    }

    #[test]
    fn component_without_options_makes_the_template_inconsistent() {
        let t = DesignTemplate::new(vec![
            Component::new("A", vec![ModuleOption::new("B", 10, "acme")]),
            Component::new("broken", vec![]),
        ]);
        assert_eq!(t.completed_design_count(), 0);
        assert!(t.completed_designs().is_empty());
        let (witness, _) = t.exists_design_within_budget(1_000).unwrap();
        assert!(witness.is_none());
        // the direct baseline also reports that no design exists
        assert_eq!(t.cheapest_cost_direct(), None);
    }

    #[test]
    fn empty_template_has_exactly_one_trivial_design() {
        let t = DesignTemplate::default();
        assert_eq!(t.completed_design_count(), 1);
        assert_eq!(t.cheapest_cost_direct(), Some(0));
    }
}
