//! In-memory relations over record schemas.
//!
//! A [`Relation`] is a named, schema-checked collection of records.  It
//! converts to and from the complex-object representation (`{record}`) used
//! by or-NRA queries, and offers the handful of query helpers the examples
//! and benchmarks need (selection, projection, conversion to the conceptual
//! level).

use std::sync::{Arc, OnceLock};

use or_nra::eval::{eval, Evaluator};
use or_nra::morphism::Morphism;
use or_nra::EvalError;
use or_object::intern::{InternId, Interner};
use or_object::{Type, Value};

use crate::schema::{Schema, SchemaError};

/// A relation's records interned once into a private, frozen arena: the
/// arena serves as the **base** of the engine's per-query overlay arenas,
/// so every query over the same relation reuses these ids and pays the
/// interning cost zero times after the first (see
/// [`Relation::interned`]).
#[derive(Debug, Clone)]
pub struct InternedRows {
    /// The frozen arena the ids live in.
    pub arena: Arc<Interner>,
    /// One id per record, in record order (`ids[i]` names `records()[i]`).
    pub ids: Vec<InternId>,
}

/// The relation sliced into columns over its interned records: one id
/// column per schema field, in schema order (SoA).  `columns[f][r]` names
/// field `f` of record `r` in the same frozen arena as
/// [`Relation::interned`] — the typed column view the engine's columnar
/// kernels gather per block, precomputed once per relation for consumers
/// that want whole columns (statistics, column scans) without walking
/// record spines per row.
#[derive(Debug, Clone)]
pub struct InternedColumns {
    /// The frozen arena the column ids live in (shared with
    /// [`InternedRows`]).
    pub arena: Arc<Interner>,
    /// One id column per schema field: `columns[f][r]` is field `f` of
    /// record `r`.
    pub columns: Vec<Vec<InternId>>,
}

/// A named in-memory relation.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Relation name (for display and error messages).
    pub name: String,
    schema: Schema,
    rows: Vec<Value>,
    /// Lazily built interned-rows cache; reset by every mutation.
    interned: OnceLock<InternedRows>,
    /// Lazily built columnar view over the interned rows; reset with it.
    columns: OnceLock<InternedColumns>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        // the interned cache is derived state, not identity
        self.name == other.name && self.schema == other.schema && self.rows == other.rows
    }
}

/// Errors from relation operations.
#[derive(Debug)]
pub enum RelationError {
    /// A schema-level problem.
    Schema(SchemaError),
    /// A query evaluation problem.
    Eval(EvalError),
}

impl std::fmt::Display for RelationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelationError::Schema(e) => write!(f, "{e}"),
            RelationError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RelationError {}

impl From<SchemaError> for RelationError {
    fn from(e: SchemaError) -> Self {
        RelationError::Schema(e)
    }
}

impl From<EvalError> for RelationError {
    fn from(e: EvalError) -> Self {
        RelationError::Eval(e)
    }
}

impl Relation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, schema: Schema) -> Relation {
        Relation {
            name: name.into(),
            schema,
            rows: Vec::new(),
            interned: OnceLock::new(),
            columns: OnceLock::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The stored records (encoded as nested pairs).
    pub fn records(&self) -> &[Value] {
        &self.rows
    }

    /// The records interned once into a frozen per-relation arena.
    ///
    /// Built lazily on first use and cached until the relation is mutated;
    /// the physical engine passes the arena as the base of its per-query
    /// overlay, so repeated queries over the same relation re-intern
    /// nothing.
    pub fn interned(&self) -> &InternedRows {
        self.interned.get_or_init(|| {
            let mut arena = Interner::new();
            let ids = self.rows.iter().map(|v| arena.intern(v)).collect();
            InternedRows {
                arena: Arc::new(arena),
                ids,
            }
        })
    }

    /// The relation's columnar (SoA) view: one id column per schema field
    /// over the interned records, sharing the frozen per-relation arena of
    /// [`Relation::interned`].
    ///
    /// Built lazily on first use and cached until the relation is mutated.
    /// Schema checking guarantees every record carries the full pair
    /// spine, so the per-field gather cannot fail.
    pub fn interned_columns(&self) -> &InternedColumns {
        self.columns.get_or_init(|| {
            let interned = self.interned();
            let columns = (0..self.schema.arity())
                .map(|f| {
                    let path = self.schema.field_path(f).expect("field index in range");
                    let mut column = Vec::new();
                    interned
                        .arena
                        .gather_path(&interned.ids, &path, &mut column)
                        .expect("schema-checked records carry every field");
                    column
                })
                .collect();
            InternedColumns {
                arena: interned.arena.clone(),
                columns,
            }
        })
    }

    /// The records in contiguous batches of at most `batch_size` rows — a
    /// convenience mirror of the batch-at-a-time granularity the physical
    /// engine's scans use internally (`ExecConfig::batch_size`), for
    /// external consumers that want to stream a relation the same way.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = &[Value]> {
        self.rows.chunks(batch_size.max(1))
    }

    /// Split the records into `n` contiguous, near-equal partitions (fewer
    /// when the relation has fewer than `n` rows; a single empty partition
    /// for an empty relation).  Delegates to [`partition_rows`] — the same
    /// split the engine's parallel executor applies to its driving input —
    /// so external schedulers shard a relation identically.
    pub fn partitions(&self, n: usize) -> Vec<&[Value]> {
        partition_rows(&self.rows, n)
    }

    /// Bulk-load a relation from pre-encoded records (each must match the
    /// schema's record type).  Rows are deduplicated; this is the fast path
    /// the workload generators and benchmarks use.
    pub fn from_records(
        name: impl Into<String>,
        schema: Schema,
        records: impl IntoIterator<Item = Value>,
    ) -> Result<Relation, RelationError> {
        let mut relation = Relation::new(name, schema);
        let mut rows: Vec<Value> = Vec::new();
        for record in records {
            if !record.has_type(&relation.schema.record_type()) {
                return Err(RelationError::Schema(SchemaError::Mismatch(format!(
                    "record {record} does not match schema {}",
                    relation.schema
                ))));
            }
            rows.push(record);
        }
        rows.sort();
        rows.dedup();
        relation.rows = rows;
        Ok(relation)
    }

    /// Insert a row given one value per field.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<(), RelationError> {
        let record = self.schema.record(values)?;
        if !self.rows.contains(&record) {
            self.rows.push(record);
            self.interned = OnceLock::new(); // caches follow the rows
            self.columns = OnceLock::new();
        }
        Ok(())
    }

    /// Insert an already-encoded record.
    pub fn insert_record(&mut self, record: Value) -> Result<(), RelationError> {
        if !record.has_type(&self.schema.record_type()) {
            return Err(RelationError::Schema(SchemaError::Mismatch(format!(
                "record {record} does not match schema {}",
                self.schema
            ))));
        }
        if !self.rows.contains(&record) {
            self.rows.push(record);
            self.interned = OnceLock::new(); // caches follow the rows
            self.columns = OnceLock::new();
        }
        Ok(())
    }

    /// The complex-object representation of the whole relation
    /// (`{record_type}`).
    pub fn to_value(&self) -> Value {
        Value::set(self.rows.iter().cloned())
    }

    /// The object type of [`Relation::to_value`].
    pub fn value_type(&self) -> Type {
        self.schema.relation_type()
    }

    /// Run an arbitrary or-NRA⁺ morphism over the relation's object
    /// representation.
    pub fn query(&self, m: &Morphism) -> Result<Value, RelationError> {
        Ok(eval(m, &self.to_value())?)
    }

    /// Run a query with an explicit evaluator (antichain semantics, step
    /// budgets, …).
    pub fn query_with(&self, ev: &mut Evaluator, m: &Morphism) -> Result<Value, RelationError> {
        Ok(ev.eval(m, &self.to_value())?)
    }

    /// Select the records satisfying a predicate morphism (`record → bool`).
    pub fn select(&self, predicate: &Morphism) -> Result<Vec<Value>, RelationError> {
        let mut out = Vec::new();
        for row in &self.rows {
            if eval(predicate, row)? == Value::Bool(true) {
                out.push(row.clone());
            }
        }
        Ok(out)
    }

    /// Project every record onto a named field.
    pub fn project(&self, field: &str) -> Result<Vec<Value>, RelationError> {
        self.rows
            .iter()
            .map(|r| self.schema.get(r, field).map_err(RelationError::from))
            .collect()
    }

    /// The conceptual-level representation of the relation: the or-set of all
    /// complete (or-set-free) instances it can stand for.
    pub fn normalize(&self) -> Value {
        or_nra::normalize::normalize_value_typed(&self.to_value(), &self.value_type())
    }

    /// How many complete instances the relation stands for (with duplicate
    /// instances counted once).
    pub fn possibility_count(&self) -> u64 {
        or_nra::normalize::possibility_count(&self.to_value())
    }
}

/// Split `rows` into `n` contiguous, near-equal partitions (fewer when
/// there are fewer rows than `n`; a single empty partition for an empty
/// slice).  This is the split [`Relation::partitions`] exposes and the
/// physical engine's parallel executor applies to the driving input —
/// generic so the engine can shard interned id rows with the same
/// geometry as value rows.
pub fn partition_rows<T>(rows: &[T], n: usize) -> Vec<&[T]> {
    let n = n.max(1).min(rows.len().max(1));
    let base = rows.len() / n;
    let extra = rows.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        out.push(&rows[start..start + len]);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use or_nra::derived;

    fn offices() -> Relation {
        let schema = Schema::new([
            Field::new("name", Type::Str),
            Field::new("office", Type::orset(Type::Int)),
        ])
        .unwrap();
        let mut r = Relation::new("offices", schema);
        r.insert(vec![Value::str("Joe"), Value::int_orset([515])])
            .unwrap();
        r.insert(vec![Value::str("Mary"), Value::int_orset([515, 212])])
            .unwrap();
        r
    }

    #[test]
    fn insertion_deduplicates_and_type_checks() {
        let mut r = offices();
        assert_eq!(r.len(), 2);
        r.insert(vec![Value::str("Joe"), Value::int_orset([515])])
            .unwrap();
        assert_eq!(r.len(), 2);
        assert!(r
            .insert(vec![Value::Int(1), Value::int_orset([1])])
            .is_err());
    }

    #[test]
    fn relation_value_has_declared_type() {
        let r = offices();
        assert!(r.to_value().has_type(&r.value_type()));
    }

    #[test]
    fn selection_and_projection() {
        let r = offices();
        let name_is_joe = r
            .schema()
            .field_morphism("name")
            .unwrap()
            .then(Morphism::pair(
                Morphism::Id,
                Morphism::constant(Value::str("Joe")),
            ))
            .then(Morphism::Eq);
        assert_eq!(r.select(&name_is_joe).unwrap().len(), 1);
        let offices_col = r.project("office").unwrap();
        assert_eq!(offices_col.len(), 2);
    }

    #[test]
    fn normalization_counts_office_assignments() {
        let r = offices();
        // Joe has 1 possible office, Mary has 2: 2 complete instances.
        assert_eq!(r.possibility_count(), 2);
        let nf = r.normalize();
        assert_eq!(nf.elements().unwrap().len(), 2);
    }

    #[test]
    fn batches_and_partitions_cover_all_rows() {
        let schema = Schema::new([Field::new("n", Type::Int)]).unwrap();
        let mut r = Relation::new("numbers", schema);
        for i in 0..10 {
            r.insert(vec![Value::Int(i)]).unwrap();
        }
        let batched: usize = r.batches(3).map(<[Value]>::len).sum();
        assert_eq!(batched, 10);
        assert!(r.batches(3).all(|b| b.len() <= 3));
        for n in [1, 3, 4, 10, 50] {
            let parts = r.partitions(n);
            assert!(parts.len() <= n);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, 10, "partitions({n}) lost rows");
            let rebuilt: Vec<Value> = parts.concat();
            assert_eq!(rebuilt, r.records());
        }
        // empty relation: a single empty partition, no batches
        let empty = Relation::new("empty", Schema::new([Field::new("n", Type::Int)]).unwrap());
        assert_eq!(empty.partitions(4).len(), 1);
        assert_eq!(empty.batches(8).count(), 0);
    }

    #[test]
    fn interned_columns_agree_with_field_projection_and_follow_mutations() {
        let mut r = offices();
        let cols = r.interned_columns();
        assert_eq!(cols.columns.len(), 2);
        for (f, field) in r.schema().fields().iter().enumerate() {
            let decoded: Vec<Value> = cols.columns[f]
                .iter()
                .map(|&id| cols.arena.value(id))
                .collect();
            assert_eq!(decoded, r.project(&field.name).unwrap(), "{}", field.name);
        }
        // the column arena is the row arena: column ids are row-field ids
        assert!(Arc::ptr_eq(&cols.arena, &r.interned().arena));
        // mutation invalidates the columnar cache along with the rows
        r.insert(vec![Value::str("Ann"), Value::int_orset([7])])
            .unwrap();
        assert_eq!(r.interned_columns().columns[0].len(), 3);
    }

    #[test]
    fn from_records_bulk_loads_and_type_checks() {
        let schema = Schema::new([Field::new("n", Type::Int)]).unwrap();
        let records: Vec<Value> = [3, 1, 2, 1].iter().map(|i| Value::Int(*i)).collect();
        let r = Relation::from_records("nums", schema.clone(), records).unwrap();
        assert_eq!(r.len(), 3);
        assert!(Relation::from_records("bad", schema, [Value::Bool(true)]).is_err());
    }

    #[test]
    fn queries_run_over_the_object_representation() {
        let r = offices();
        // "does anyone possibly sit in office 212?"
        let office = r.schema().field_morphism("office").unwrap();
        let is_212 =
            Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(212))).then(Morphism::Eq);
        let q = derived::exists(office.then(derived::or_exists(is_212)));
        assert_eq!(r.query(&q).unwrap(), Value::Bool(true));
        // "does everyone certainly sit in office 515?"
        let office = r.schema().field_morphism("office").unwrap();
        let is_515 =
            Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(515))).then(Morphism::Eq);
        let q = derived::forall(office.then(derived::or_forall(is_515)));
        assert_eq!(r.query(&q).unwrap(), Value::Bool(false));
    }
}
