//! Synthetic workload generators for the examples and benchmarks.
//!
//! The paper has no experimental datasets, so the benchmark harness uses
//! synthetic workloads modelled on its motivating applications: design
//! templates with a configurable number of components and alternatives,
//! planning problems with configurable slack, and Codd tables with a
//! configurable null rate.  All generators are deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use or_object::Type;
use or_object::Value;

use crate::codd::{Cell, CoddTable};
use crate::design::{Component, DesignTemplate, ModuleOption};
use crate::planning::{PlanningProblem, Task};
use crate::schema::Field;

/// Deterministic workload generator.
#[derive(Debug)]
pub struct Workload {
    rng: StdRng,
}

impl Workload {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Workload {
        Workload {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A design template with `components` components, each with between 1
    /// and `max_alternatives` alternatives, costs drawn from `10..=100`.
    pub fn design_template(
        &mut self,
        components: usize,
        max_alternatives: usize,
    ) -> DesignTemplate {
        let vendors = ["acme", "globex", "initech", "umbrella"];
        let comps = (0..components)
            .map(|i| {
                let alts = self.rng.gen_range(1..=max_alternatives.max(1));
                let options = (0..alts)
                    .map(|j| {
                        ModuleOption::new(
                            format!("m{i}_{j}"),
                            self.rng.gen_range(10..=100),
                            vendors[self.rng.gen_range(0..vendors.len())],
                        )
                    })
                    .collect();
                Component::new(format!("c{i}"), options)
            })
            .collect();
        DesignTemplate::new(comps)
    }

    /// A design template in which every component has exactly
    /// `alternatives` alternatives (used for controlled scaling sweeps).
    pub fn uniform_design_template(
        &mut self,
        components: usize,
        alternatives: usize,
    ) -> DesignTemplate {
        let vendors = ["acme", "globex", "initech", "umbrella"];
        let comps = (0..components)
            .map(|i| {
                let options = (0..alternatives.max(1))
                    .map(|j| {
                        ModuleOption::new(
                            format!("m{i}_{j}"),
                            self.rng.gen_range(10..=100),
                            vendors[self.rng.gen_range(0..vendors.len())],
                        )
                    })
                    .collect();
                Component::new(format!("c{i}"), options)
            })
            .collect();
        DesignTemplate::new(comps)
    }

    /// A planning problem with `tasks` tasks over a horizon of
    /// `horizon` slots; `slack` controls how many admissible slots each task
    /// gets (more slack makes the instance easier).
    pub fn planning_problem(
        &mut self,
        tasks: usize,
        horizon: i64,
        slack: usize,
    ) -> PlanningProblem {
        let ts = (0..tasks)
            .map(|i| {
                let duration = self.rng.gen_range(1..=2);
                let nslots = slack.max(1);
                let slots: Vec<i64> = (0..nslots)
                    .map(|_| self.rng.gen_range(0..horizon.max(1)))
                    .collect();
                Task::new(format!("t{i}"), slots, duration)
            })
            .collect();
        PlanningProblem::new(ts)
    }

    /// A Codd table over `columns` integer columns and `rows` rows, with each
    /// cell independently null with probability `null_permille / 1000`.
    pub fn codd_table(&mut self, columns: usize, rows: usize, null_permille: u32) -> CoddTable {
        let mut table = CoddTable::new(
            "synthetic",
            (0..columns).map(|i| Field::new(format!("col{i}"), Type::Int)),
        )
        .expect("columns are base-typed");
        for _ in 0..rows {
            let row: Vec<Cell> = (0..columns)
                .map(|_| {
                    if self.rng.gen_range(0..1000) < null_permille {
                        Cell::Null
                    } else {
                        Cell::int(self.rng.gen_range(0..20))
                    }
                })
                .collect();
            table.insert(row).expect("row matches schema");
        }
        table
    }

    /// A random complex object drawn from the design-template encoding (used
    /// by benchmarks that need "realistic" nested or-objects of a given
    /// scale).
    pub fn design_object(&mut self, components: usize, alternatives: usize) -> Value {
        self.uniform_design_template(components, alternatives)
            .to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = Workload::new(3).design_template(4, 3);
        let b = Workload::new(3).design_template(4, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_templates_have_predictable_counts() {
        let t = Workload::new(1).uniform_design_template(5, 3);
        assert_eq!(t.completed_design_count(), 3u64.pow(5));
    }

    #[test]
    fn planning_problems_respect_parameters() {
        let p = Workload::new(7).planning_problem(6, 10, 3);
        assert_eq!(p.tasks.len(), 6);
        assert!(p
            .tasks
            .iter()
            .all(|t| !t.slots.is_empty() && t.slots.len() <= 3));
    }

    #[test]
    fn codd_tables_have_requested_shape_and_null_rate() {
        let t = Workload::new(5).codd_table(4, 200, 250);
        assert_eq!(t.len(), 200);
        let ratio = t.null_ratio();
        assert!(
            ratio > 0.15 && ratio < 0.35,
            "null ratio {ratio} out of range"
        );
    }

    #[test]
    fn design_objects_type_check() {
        let v = Workload::new(9).design_object(3, 2);
        assert!(v.has_type(&DesignTemplate::value_type()));
    }
}
