//! # or-db — a design & planning database substrate over or-sets
//!
//! The motivating applications of the paper (and of Imielinski, Naqvi and
//! Vadaparty's or-set proposal) are design, planning and scheduling databases
//! in which attributes record *alternatives*.  This crate provides the
//! database-shaped substrate the examples and benchmarks run on:
//!
//! * [`schema`] / [`relation`] — named record schemas over the or-NRA type
//!   system and in-memory relations that convert to complex objects and run
//!   or-NRA⁺ queries;
//! * [`codd`] — Codd tables (classical null-based incomplete information) and
//!   their import as flat-domain nulls or as closed-world or-sets;
//! * [`design`] — the design-template domain: components with alternative
//!   modules, structural queries ("what are the choices?") and conceptual
//!   queries ("is there a low-cost completed design?");
//! * [`planning`] — a single-resource scheduling domain with or-set slot
//!   choices and an existential "is there a conflict-free schedule?" query;
//! * [`workload`] — deterministic synthetic workload generators used by the
//!   benchmark harness.
//!
//! ```
//! use or_db::design::{Component, DesignTemplate, ModuleOption};
//!
//! let template = DesignTemplate::new(vec![Component::new(
//!     "A",
//!     vec![ModuleOption::new("B", 70, "acme"), ModuleOption::new("C", 40, "globex")],
//! )]);
//! // Structural level: two recorded choices.
//! assert_eq!(template.choices_for("A").unwrap().len(), 2);
//! // Conceptual level: two completed designs, the cheapest costing 40.
//! assert_eq!(template.completed_design_count(), 2);
//! assert_eq!(template.cheapest_design().unwrap().total_cost(), 40);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod codd;
pub mod design;
pub mod planning;
pub mod relation;
pub mod schema;
pub mod workload;

pub use codd::{Cell, CoddTable};
pub use design::{Component, DesignTemplate, ModuleOption};
pub use planning::{PlanningProblem, Schedule, Task};
pub use relation::{partition_rows, InternedColumns, InternedRows, Relation, RelationError};
pub use schema::{Field, Schema, SchemaError};
pub use workload::Workload;
