//! A small scheduling/planning domain (the second application area named by
//! Imielinski, Naqvi and Vadaparty).
//!
//! Each task has an or-set of admissible time slots; a *schedule* is a
//! conceptual completion assigning one slot per task.  The planner asks
//! whether a conflict-free schedule exists — structurally the same existential
//! query as the satisfiability reduction of Section 6, here phrased over a
//! realistic workload and answered either by lazy normalization or by a
//! direct backtracking baseline.

use or_nra::lazy::LazyNormalizer;
use or_nra::normalize::possibility_count;
use or_nra::EvalError;
use or_object::{Type, Value};

/// A task with its admissible time slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task name.
    pub name: String,
    /// Admissible (integer) time slots.
    pub slots: Vec<i64>,
    /// How many consecutive slots the task occupies.
    pub duration: i64,
}

impl Task {
    /// Create a task.
    pub fn new(
        name: impl Into<String>,
        slots: impl IntoIterator<Item = i64>,
        duration: i64,
    ) -> Task {
        Task {
            name: name.into(),
            slots: slots.into_iter().collect(),
            duration: duration.max(1),
        }
    }

    /// Encode as `(name, (duration, <slot, …>))`.
    pub fn to_value(&self) -> Value {
        Value::pair(
            Value::str(self.name.clone()),
            Value::pair(
                Value::Int(self.duration),
                Value::orset(self.slots.iter().map(|&s| Value::Int(s))),
            ),
        )
    }

    /// The object type of an encoded task.
    pub fn value_type() -> Type {
        Type::prod(Type::Str, Type::prod(Type::Int, Type::orset(Type::Int)))
    }
}

/// A planning problem: a set of tasks competing for one resource.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanningProblem {
    /// The tasks to schedule.
    pub tasks: Vec<Task>,
}

/// A concrete schedule: a start slot per task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// `(task, start slot, duration)` per task.
    pub assignments: Vec<(String, i64, i64)>,
}

impl Schedule {
    /// Is the schedule free of overlaps on the single shared resource?
    pub fn conflict_free(&self) -> bool {
        for (i, a) in self.assignments.iter().enumerate() {
            for b in self.assignments.iter().skip(i + 1) {
                let (a_start, a_end) = (a.1, a.1 + a.2);
                let (b_start, b_end) = (b.1, b.1 + b.2);
                if a_start < b_end && b_start < a_end {
                    return false;
                }
            }
        }
        true
    }
}

impl PlanningProblem {
    /// Create a problem from tasks.
    pub fn new(tasks: Vec<Task>) -> PlanningProblem {
        PlanningProblem { tasks }
    }

    /// Encode the problem as a complex object of type
    /// `{string × (int × <int>)}`.
    pub fn to_value(&self) -> Value {
        Value::set(self.tasks.iter().map(Task::to_value))
    }

    /// The object type of an encoded problem.
    pub fn value_type() -> Type {
        Type::set(Task::value_type())
    }

    /// The number of candidate schedules (the cardinality of the normal
    /// form).
    pub fn candidate_count(&self) -> u64 {
        possibility_count(&self.to_value())
    }

    /// Existential conceptual query: is there a conflict-free schedule?
    /// Answered by lazily enumerating the normal form and stopping at the
    /// first conflict-free candidate.  Returns the witness and the number of
    /// candidates inspected.
    pub fn find_schedule_lazily(&self) -> Result<(Option<Schedule>, u128), EvalError> {
        let mut lazy = LazyNormalizer::new(&self.to_value());
        let (witness, inspected) = lazy.find_witness(|candidate| {
            Ok(decode_schedule(candidate).is_some_and(|s| s.conflict_free()))
        })?;
        Ok((witness.as_ref().and_then(decode_schedule), inspected))
    }

    /// Backtracking baseline: assign tasks one by one, pruning conflicts
    /// early.  Used to cross-check the or-set pipeline.
    pub fn find_schedule_backtracking(&self) -> Option<Schedule> {
        fn overlaps(a: (i64, i64), b: (i64, i64)) -> bool {
            a.0 < b.0 + b.1 && b.0 < a.0 + a.1
        }
        fn go(tasks: &[Task], chosen: &mut Vec<(String, i64, i64)>) -> bool {
            let Some(task) = tasks.first() else {
                return true;
            };
            for &slot in &task.slots {
                let candidate = (slot, task.duration);
                if chosen.iter().all(|c| !overlaps((c.1, c.2), candidate)) {
                    chosen.push((task.name.clone(), slot, task.duration));
                    if go(&tasks[1..], chosen) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            false
        }
        let mut chosen = Vec::new();
        if go(&self.tasks, &mut chosen) {
            Some(Schedule {
                assignments: chosen,
            })
        } else {
            None
        }
    }
}

/// Decode one element of the normalized problem into a [`Schedule`].
fn decode_schedule(candidate: &Value) -> Option<Schedule> {
    let items = match candidate {
        Value::Set(items) => items,
        _ => return None,
    };
    let mut assignments = Vec::with_capacity(items.len());
    for item in items {
        let (name, rest) = item.as_pair()?;
        let (duration, slot) = rest.as_pair()?;
        assignments.push((
            name.as_str()?.to_string(),
            slot.as_int()?,
            duration.as_int()?,
        ));
    }
    Some(Schedule { assignments })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feasible_problem() -> PlanningProblem {
        PlanningProblem::new(vec![
            Task::new("drill", [0, 2, 4], 2),
            Task::new("paint", [0, 2], 2),
            Task::new("pack", [4, 6], 1),
        ])
    }

    fn infeasible_problem() -> PlanningProblem {
        // two tasks of duration 2 competing for the single slot 0
        PlanningProblem::new(vec![Task::new("a", [0], 2), Task::new("b", [0, 1], 2)])
    }

    #[test]
    fn encoding_type_checks() {
        let p = feasible_problem();
        assert!(p.to_value().has_type(&PlanningProblem::value_type()));
        assert_eq!(p.candidate_count(), 3 * 2 * 2);
    }

    #[test]
    fn lazy_and_backtracking_agree_on_feasible_instances() {
        let p = feasible_problem();
        let (lazy, inspected) = p.find_schedule_lazily().unwrap();
        let lazy = lazy.expect("a schedule exists");
        assert!(lazy.conflict_free());
        assert!(inspected <= p.candidate_count() as u128);
        let direct = p.find_schedule_backtracking().expect("a schedule exists");
        assert!(direct.conflict_free());
    }

    #[test]
    fn lazy_and_backtracking_agree_on_infeasible_instances() {
        let p = infeasible_problem();
        let (lazy, inspected) = p.find_schedule_lazily().unwrap();
        assert!(lazy.is_none());
        assert_eq!(inspected, p.candidate_count() as u128);
        assert!(p.find_schedule_backtracking().is_none());
    }

    #[test]
    fn conflict_detection_handles_touching_intervals() {
        let s = Schedule {
            assignments: vec![("a".into(), 0, 2), ("b".into(), 2, 2)],
        };
        assert!(s.conflict_free());
        let s = Schedule {
            assignments: vec![("a".into(), 0, 3), ("b".into(), 2, 2)],
        };
        assert!(!s.conflict_free());
    }

    #[test]
    fn empty_problem_is_trivially_schedulable() {
        let p = PlanningProblem::default();
        let (schedule, _) = p.find_schedule_lazily().unwrap();
        assert!(schedule.is_some());
        assert!(p.find_schedule_backtracking().is_some());
    }
}
