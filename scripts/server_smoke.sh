#!/usr/bin/env bash
# Server smoke: start or-server on the example database, drive the three
# serving endpoints concurrently, then gate on a clean graceful shutdown.
# Run from the repository root (CI runs exactly this script).
set -euo pipefail

ADDR="127.0.0.1:7171"
BASE="http://$ADDR"
LOG="$(mktemp)"

cargo build --release -p or-server

target/release/or-server --addr "$ADDR" --db example=examples/server_db.orql \
    >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# wait for the listener
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
curl -sf "$BASE/healthz" | grep -q '"status":"serving"'

# concurrent clients over /query, /stats and /healthz
run_client() {
    for _ in $(seq 1 5); do
        body='{"db":"example","statement":"{ fst(p) | p <- parts, snd(p) <= 45 }"}'
        out="$(curl -sf -X POST "$BASE/query" -d "$body")"
        echo "$out" | grep -q '"value":"{1, 2, 3}"' || { echo "bad query result: $out"; exit 1; }
        echo "$out" | grep -q '"route":"engine"' || { echo "not engine-served: $out"; exit 1; }
        curl -sf "$BASE/stats" | grep -q '"example"' || exit 1
        curl -sf "$BASE/healthz" >/dev/null || exit 1
    done
}
PIDS=()
for _ in $(seq 1 4); do run_client & PIDS+=($!); done
for pid in "${PIDS[@]}"; do wait "$pid"; done

# a write, then read it back
curl -sf -X POST "$BASE/query" \
    -d '{"db":"example","statement":"let pricey = { fst(p) | p <- parts, snd(p) >= 55 }"}' \
    | grep -q '"bound":"pricey"'
curl -sf -X POST "$BASE/query" -d '{"db":"example","statement":"{ x | x <- pricey }"}' \
    | grep -q '"value":"{4, 5}"'

# budget admission control rejects with 422, leaving the session intact
STATUS="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/query" \
    -d '{"db":"example","statement":"{ p | p <- parts }","budget":{"time_ms":0}}')"
[ "$STATUS" = "422" ] || { echo "expected 422 on zero budget, got $STATUS"; exit 1; }
curl -sf "$BASE/stats" | grep -q '"errors":1'

# graceful shutdown: the server must acknowledge and exit 0 on its own
curl -sf -X POST "$BASE/shutdown" | grep -q 'shutting down'
SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
trap - EXIT
if [ "$SERVER_EXIT" -ne 0 ]; then
    echo "server exited non-zero ($SERVER_EXIT); log:"
    cat "$LOG"
    exit 1
fi
grep -q "shut down cleanly" "$LOG"
echo "server smoke OK"
