//! Repository lint, run as a tier-1 test: delegates to the `or-analyze`
//! lint pass (rules `L01`–`L06`, catalogued in `docs/ANALYZE.md`), which
//! subsumes the markdown link audit this file used to hand-roll as its
//! `L06` rule.  The CI `static-analysis` job runs the same pass through
//! the `or-analyze` binary; keeping the delegation here means a plain
//! `cargo test` catches a broken doc link or a lint regression too.

use std::path::PathBuf;

#[test]
fn or_analyze_lint_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let findings = or_analyze::lint_repo(&root);
    assert!(
        findings.is_empty(),
        "or-analyze lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
