//! Documentation link audit: every **relative** markdown link in
//! `README.md` and `docs/*.md` must point at a file (or directory) that
//! actually exists in the repository.
//!
//! The CI `doc-links` job runs exactly this test, so a doc that moves or a
//! link that rots fails the build instead of 404ing for a reader.  External
//! links (`http(s)://`) and intra-page anchors (`#...`) are out of scope —
//! the audit is about keeping the *repository's own* cross-references
//! honest.

use std::path::{Path, PathBuf};

/// Extract `(link target, byte offset)` pairs for every inline markdown
/// link `[text](target)` in `source`.  Reference-style links are not used
/// in this repository; images (`![..](..)`) share the inline syntax and
/// are audited the same way.
fn markdown_link_targets(source: &str) -> Vec<(String, usize)> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(rel_end) = source[start..].find(')') {
                let target = &source[start..start + rel_end];
                out.push((target.to_string(), i));
                i = start + rel_end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Is this link target in scope for the audit (a relative path into the
/// repository)?
fn is_relative_file_link(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#'))
}

fn audit_file(repo_root: &Path, doc: &Path, failures: &mut Vec<String>) {
    let source = std::fs::read_to_string(doc)
        .unwrap_or_else(|e| panic!("could not read {}: {e}", doc.display()));
    let doc_dir = doc.parent().expect("doc files live in a directory");
    for (target, offset) in markdown_link_targets(&source) {
        if !is_relative_file_link(&target) {
            continue;
        }
        // strip an in-file anchor: FILE.md#section points at FILE.md
        let path_part = target.split('#').next().expect("split yields a first");
        if path_part.is_empty() {
            continue;
        }
        let resolved = doc_dir.join(path_part);
        if !resolved.exists() {
            let line = source[..offset].bytes().filter(|&b| b == b'\n').count() + 1;
            failures.push(format!(
                "{}:{line}: broken relative link `{target}` (resolved to {})",
                doc.strip_prefix(repo_root).unwrap_or(doc).display(),
                resolved.display(),
            ));
        }
    }
}

#[test]
fn every_relative_markdown_link_resolves() {
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut docs = vec![repo_root.join("README.md")];
    let docs_dir = repo_root.join("docs");
    let entries = std::fs::read_dir(&docs_dir)
        .unwrap_or_else(|e| panic!("could not list {}: {e}", docs_dir.display()));
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            docs.push(path);
        }
    }
    assert!(
        docs.len() >= 3,
        "expected README.md plus at least docs/ENGINE.md and docs/BENCHMARKS.md, found {docs:?}"
    );

    let mut failures = Vec::new();
    for doc in &docs {
        audit_file(&repo_root, doc, &mut failures);
    }
    assert!(
        failures.is_empty(),
        "broken documentation links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn the_link_extractor_sees_inline_links() {
    let targets = markdown_link_targets("see [a](x.md) and ![img](y.png) but not http://z");
    let names: Vec<&str> = targets.iter().map(|(t, _)| t.as_str()).collect();
    assert_eq!(names, vec!["x.md", "y.png"]);
    assert!(is_relative_file_link("docs/ENGINE.md"));
    assert!(!is_relative_file_link("https://example.com"));
    assert!(!is_relative_file_link("#anchor"));
}
