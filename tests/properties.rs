//! Property-based tests (proptest) for the core invariants of the
//! reproduction.
//!
//! Random complex objects are produced by composing proptest's shrinkable
//! primitives with the deterministic generators of `or_object::generate`
//! (seeded from a proptest-chosen seed), so failures reduce to a seed and a
//! small configuration that can be replayed directly.

use proptest::prelude::*;

use or_nra::coherence::check_coherence;
use or_nra::cost;
use or_nra::expand::expand_normalize;
use or_nra::lazy::LazyNormalizer;
use or_nra::morphism::Morphism;
use or_nra::normalize::{
    denotation_count, denotations, normalize_value, normalize_value_typed, possibility_count,
    RewriteStrategy,
};
use or_nra::optimize::simplified;
use or_nra::prelude::eval;
use or_nra::preserve::is_lossless_on;
use or_object::alpha::{alpha_antichain, alpha_set, beta_antichain};
use or_object::antichain::{is_antichain_object, to_antichain};
use or_object::generate::{GenConfig, Generator};
use or_object::order::{object_leq, object_lt};
use or_object::theory::{entails, separating_formula};
use or_object::{BaseOrder, Type, Value};

/// A proptest strategy producing a random or-set-containing object (and its
/// type) via the deterministic generator.
fn typed_or_object() -> impl Strategy<Value = (Type, Value)> {
    (any::<u64>(), 2usize..=4, 1usize..=3).prop_map(|(seed, depth, width)| {
        let config = GenConfig {
            max_depth: depth,
            max_width: width,
            ..GenConfig::default()
        };
        Generator::new(seed, config).typed_or_object()
    })
}

/// A strategy producing arbitrary (possibly or-free) objects.
fn typed_object() -> impl Strategy<Value = (Type, Value)> {
    (any::<u64>(), 2usize..=4, 1usize..=3).prop_map(|(seed, depth, width)| {
        let config = GenConfig {
            max_depth: depth,
            max_width: width,
            ..GenConfig::default()
        };
        Generator::new(seed, config).typed_object()
    })
}

/// Objects of a fixed shallow type, for the order/theory properties.
fn shallow_object(seed: u64, width: usize) -> Value {
    let config = GenConfig {
        max_depth: 3,
        max_width: width,
        int_range: 4,
        ..GenConfig::default()
    };
    let ty = Type::set(Type::orset(Type::Int));
    Generator::new(seed, config).object_of(&ty)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    // ---------------------------------------------------------------------
    // object model
    // ---------------------------------------------------------------------

    /// Canonical collections ignore order and duplicates.
    #[test]
    fn canonical_sets_ignore_order_and_duplicates(mut items in proptest::collection::vec(-20i64..20, 0..8)) {
        let a = Value::int_set(items.clone());
        items.reverse();
        items.extend(items.clone());
        let b = Value::int_set(items);
        prop_assert_eq!(a, b);
    }

    /// Generated objects inhabit their generated types.
    #[test]
    fn generated_objects_are_well_typed((ty, v) in typed_object()) {
        prop_assert!(v.has_type(&ty));
    }

    /// The structural order is reflexive, and strictness excludes equality.
    #[test]
    fn order_is_reflexive_and_strictness_is_irreflexive((_, v) in typed_object()) {
        for base in [BaseOrder::Discrete, BaseOrder::FlatWithNull, BaseOrder::NumericLeq] {
            prop_assert!(object_leq(base, &v, &v));
            prop_assert!(!object_lt(base, &v, &v));
        }
    }

    /// The order is transitive on sampled triples of a common type.
    #[test]
    fn order_is_transitive(seed in any::<u64>()) {
        let base = BaseOrder::FlatWithNull;
        let xs: Vec<Value> = (0..4).map(|i| shallow_object(seed.wrapping_add(i), 2)).collect();
        for x in &xs {
            for y in &xs {
                for z in &xs {
                    if object_leq(base, x, y) && object_leq(base, y, z) {
                        prop_assert!(object_leq(base, x, z));
                    }
                }
            }
        }
    }

    /// Antichain coercion is idempotent, produces antichains, and never
    /// increases the number of elements.
    #[test]
    fn antichain_coercion_is_idempotent((_, v) in typed_object()) {
        let base = BaseOrder::NumericLeq;
        let once = to_antichain(base, &v);
        prop_assert!(is_antichain_object(base, &once));
        prop_assert_eq!(to_antichain(base, &once), once.clone());
        prop_assert!(once.size() <= v.size());
    }

    /// Theorem 3.3: alpha_a and beta_a are mutually inverse on antichains of
    /// antichains (sets of or-sets).
    #[test]
    fn alpha_beta_roundtrip(seed in any::<u64>(), width in 1usize..=3) {
        let base = BaseOrder::FlatWithNull;
        let v = to_antichain(base, &shallow_object(seed, width));
        prop_assume!(!v.contains_empty_orset());
        let a = alpha_antichain(base, &v).unwrap();
        let back = beta_antichain(base, &a).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Proposition 3.4 (soundness): a separating formula, when produced,
    /// holds at the larger object and fails at the smaller one; and no
    /// formula is produced when x ⊑ y.
    #[test]
    fn separating_formulas_are_sound(seed in any::<u64>(), width in 1usize..=3) {
        let base = BaseOrder::FlatWithNull;
        let x = shallow_object(seed, width);
        let y = shallow_object(seed.wrapping_mul(31).wrapping_add(7), width);
        match separating_formula(base, &x, &y) {
            None => prop_assert!(object_leq(base, &x, &y)),
            Some(phi) => {
                prop_assert!(!object_leq(base, &x, &y));
                prop_assert!(entails(base, &y, &phi));
                prop_assert!(!entails(base, &x, &phi));
            }
        }
    }

    // ---------------------------------------------------------------------
    // normalization
    // ---------------------------------------------------------------------

    /// alpha's output cardinality equals the product of the member or-set
    /// cardinalities when all elements are distinct... in general it is
    /// bounded by that product.
    #[test]
    fn alpha_cardinality_is_bounded_by_the_product(seed in any::<u64>(), width in 1usize..=3) {
        let v = shallow_object(seed, width);
        prop_assume!(!v.contains_empty_orset());
        let product: usize = v
            .elements()
            .unwrap()
            .iter()
            .map(|o| o.elements().unwrap().len())
            .product();
        let out = alpha_set(&v).unwrap();
        prop_assert!(out.elements().unwrap().len() <= product.max(1));
    }

    /// Normalization is coherent (Theorem 4.2): every strategy and the direct
    /// implementation agree.
    #[test]
    fn normalization_is_coherent((ty, v) in typed_or_object()) {
        prop_assume!(denotation_count(&v) <= 2048);
        let report = check_coherence(&v, &ty, &RewriteStrategy::portfolio()).unwrap();
        prop_assert!(report.coherent);
    }

    /// The normal form is an or-set of or-set-free objects (or the object is
    /// or-free and unchanged), and normalization is idempotent.
    #[test]
    fn normal_forms_are_flat_and_idempotent((_, v) in typed_or_object()) {
        prop_assume!(denotation_count(&v) <= 2048);
        let nf = normalize_value(&v);
        match &nf {
            Value::OrSet(items) => {
                prop_assert!(items.iter().all(|d| !d.contains_orset()));
            }
            other => prop_assert!(!other.contains_orset()),
        }
        prop_assert_eq!(normalize_value(&nf), nf.clone());
    }

    /// Lazy enumeration produces exactly the denotations of the eager
    /// implementation (as multisets), and `denotation_count` predicts both.
    #[test]
    fn lazy_and_eager_denotations_agree((_, v) in typed_or_object()) {
        prop_assume!(denotation_count(&v) <= 512);
        let eager = denotations(&v);
        let lazy: Vec<Value> = LazyNormalizer::new(&v).collect();
        prop_assert_eq!(denotation_count(&v), eager.len() as u128);
        let mut a = eager;
        let mut b = lazy;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Corollary 4.3: the or-NRA expansion of normalize agrees with the
    /// primitive (typed) normalization.
    #[test]
    fn expansion_agrees_with_primitive((ty, v) in typed_or_object()) {
        prop_assume!(denotation_count(&v) <= 512);
        let expansion = expand_normalize(&ty).unwrap();
        prop_assert!(!expansion.uses_normalize());
        let expected = normalize_value_typed(&v, &ty);
        prop_assert_eq!(eval(&expansion, &v).unwrap(), expected);
    }

    /// Section 6 bounds: cardinality and size of normal forms stay within the
    /// closed-form bounds for objects without empty collections.
    #[test]
    fn cost_bounds_hold((_, v) in typed_or_object()) {
        prop_assume!(!v.contains_empty_collection());
        prop_assume!(denotation_count(&v) <= 4096);
        let report = cost::measure(&v);
        prop_assert!(report.within_bounds, "bounds violated: {:?}", report);
        prop_assert!(u64::from(report.cardinality <= report.normal_form_size.max(1)) == 1);
    }

    /// Proposition 6.1: the possibility count is bounded by the product over
    /// innermost or-sets of (cardinality + 1).
    #[test]
    fn proposition_6_1((_, v) in typed_or_object()) {
        prop_assume!(denotation_count(&v) <= 4096);
        if let Some(bound) = cost::proposition_6_1_bound(&v) {
            prop_assert!(u128::from(possibility_count(&v)) <= bound);
        }
    }

    // ---------------------------------------------------------------------
    // the algebra
    // ---------------------------------------------------------------------

    /// The optimizer never changes the meaning of a morphism on the inputs it
    /// is defined on (sampled over a family of query shapes).
    #[test]
    fn optimizer_preserves_semantics(seed in any::<u64>(), n in 1usize..=4) {
        use or_nra::derived;
        let v = Value::set((0..n as i64).map(|i| Value::pair(Value::Int(i), Value::Int(i + 1))));
        let queries = vec![
            Morphism::map(Morphism::Proj1).then(Morphism::map(Morphism::Eta)).then(Morphism::Mu),
            derived::select(Morphism::Proj2.then(Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(2)))).then(Morphism::Prim(or_nra::Prim::Leq))),
            Morphism::Eta.then(Morphism::Mu).then(Morphism::map(Morphism::pair(Morphism::Proj2, Morphism::Proj1))),
            derived::exists(Morphism::Proj1.then(Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(seed as i64 % 5)))).then(Morphism::Eq)),
        ];
        for q in queries {
            let s = simplified(&q);
            prop_assert!(s.size() <= q.size());
            prop_assert_eq!(eval(&q, &v).unwrap(), eval(&s, &v).unwrap());
        }
    }

    /// Theorem 5.1 on a safe fragment: projections and or-maps of or-free
    /// primitives are lossless for every generated input of the right shape.
    #[test]
    fn losslessness_on_the_safe_fragment(seed in any::<u64>(), width in 1usize..=3) {
        let config = GenConfig { max_depth: 2, max_width: width, ..GenConfig::default() };
        let mut gen = Generator::new(seed, config);
        // f = pi1 : <int> × {int} -> <int>
        let ty = Type::prod(Type::orset(Type::Int), Type::set(Type::Int));
        let x = gen.object_of(&ty);
        prop_assume!(!x.contains_empty_orset());
        prop_assert!(is_lossless_on(&Morphism::Proj1, &x).unwrap());
        // g = ormap(plus) : <int × int> -> <int>
        let ty = Type::orset(Type::prod(Type::Int, Type::Int));
        let y = gen.object_of(&ty);
        prop_assume!(!y.contains_empty_orset());
        prop_assert!(is_lossless_on(&Morphism::ormap(Morphism::Prim(or_nra::Prim::Plus)), &y).unwrap());
    }

    /// The SAT reduction agrees with DPLL on random small formulae.
    #[test]
    fn sat_reduction_is_correct(seed in any::<u64>(), vars in 3u32..=6, extra in 0usize..=4) {
        let mut gen = or_logic::CnfGenerator::new(seed);
        let cnf = gen.random_kcnf(vars, 3 + extra, 2 + (vars % 2) as usize);
        let expected = or_logic::encode::sat_by_dpll(&cnf);
        prop_assert_eq!(or_logic::encode::sat_by_lazy_normalization(&cnf).unwrap().satisfiable, expected);
        prop_assert_eq!(or_logic::encode::sat_by_eager_normalization(&cnf).unwrap(), expected);
    }

    /// Interned α-expansion is pointwise equal to the existing
    /// `or_object::alpha` expansion on generated sets of or-sets, and
    /// interned values round-trip.
    #[test]
    fn interned_alpha_matches_plain_alpha(seed in any::<u64>(), width in 1usize..=3) {
        use or_object::alpha::{alpha_set, alpha_set_interned};
        use or_object::intern::Interner;
        let v = shallow_object(seed, width);
        let mut arena = Interner::new();
        let plain = alpha_set(&v).unwrap();
        let interned = alpha_set_interned(&mut arena, &v).unwrap();
        prop_assert_eq!(arena.value(interned), plain);
        // interning is canonical: re-interning the materialized result gives
        // the same id back
        let reread = arena.intern(&arena.value(interned));
        prop_assert_eq!(reread, interned);
    }

    /// Interned lazy expansion enumerates exactly the eager denotations
    /// (pointwise, in order), sharing structure through the arena.
    #[test]
    fn interned_expansion_matches_eager_denotations((_, v) in typed_or_object()) {
        use or_object::intern::Interner;
        prop_assume!(denotation_count(&v) <= 512);
        let eager = denotations(&v);
        let mut arena = Interner::new();
        let mut lazy = LazyNormalizer::new(&v);
        let mut decoded = Vec::new();
        while let Some(id) = lazy.next_interned(&mut arena) {
            decoded.push(arena.value(id));
        }
        prop_assert_eq!(decoded, eager);
    }

    /// Differential test with high-fanout nested or-sets (fanout ≥ 8): the
    /// engine — sequential, parallel, and through the expand planner —
    /// agrees with the interpreter on α-expansion and expand-then-filter
    /// queries.
    #[test]
    fn engine_agrees_on_high_fanout_expansion(seed in any::<u64>(), rows in 1usize..=12) {
        use or_db::{Field, Relation, Schema};
        use or_engine::{run_morphism_on_value, run_plan_optimized, ExecConfig};
        use or_nra::derived;
        use or_nra::Prim;

        // rows with a fanout-8 or-set field and a *nested* or-set-of-or-sets
        // field (fanout 8 at the outer level, ≥ 2 inside)
        let schema = Schema::new([
            Field::new("id", Type::Int),
            Field::new("alts", Type::orset(Type::Int)),
            Field::new("nested", Type::orset(Type::orset(Type::Int))),
        ]).unwrap();
        let relation = Relation::from_records(
            "fanout",
            schema,
            (0..rows as i64).map(|i| {
                let h = (seed >> 3) as i64 % 5;
                Value::pair(
                    Value::Int(i),
                    Value::pair(
                        Value::int_orset((0..8).map(|k| (i + k + h) % 11)),
                        Value::orset((0..8).map(|k| {
                            Value::int_orset([(i + k) % 3, (i + k + 1) % 3])
                        })),
                    ),
                )
            }),
        ).unwrap();
        let expand = Morphism::map(Morphism::Normalize.then(Morphism::OrToSet)).then(Morphism::Mu);
        let keep_id = Morphism::Proj1
            .then(Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(rows as i64 / 2))))
            .then(Morphism::Prim(Prim::Leq));
        let filtered = expand.clone().then(derived::select(keep_id));
        let db = relation.to_value();
        for q in [expand, filtered] {
            let expected = eval(&q, &db).unwrap();
            for workers in [1usize, 4] {
                let config = ExecConfig::default().with_workers(workers).with_batch_size(16);
                let got = run_morphism_on_value(&db, &q, config).unwrap();
                prop_assert_eq!(&got, &expected, "engine disagreed ({} workers) on {}", workers, q);
            }
            // and through the expand planner
            let plan = or_nra::optimize::lower(&q).unwrap();
            let (planned, _, _) =
                run_plan_optimized(&plan, &[&relation], ExecConfig::default().with_workers(4)).unwrap();
            prop_assert_eq!(&planned, &expected, "planned engine disagreed on {}", q);
        }
    }

    /// Differential test: the physical engine agrees with the interpreter on
    /// every lowerable query over generated relations, in both sequential
    /// and multi-worker configurations.
    #[test]
    fn engine_agrees_with_interpreter(seed in any::<u64>(), rows in 1usize..=40, workers in 1usize..=4) {
        use or_engine::{run_morphism_on_value, ExecConfig};
        use or_nra::derived;
        use or_nra::Prim;

        // relation of (id, (cost, <alternatives>)) records, derived
        // deterministically from the seed
        let relation = Value::set((0..rows as i64).map(|i| {
            let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
            let cost = (h % 50) as i64;
            let alts = Value::int_orset((0..1 + (i % 3)).map(|k| ((h >> 8) % 5) as i64 + k));
            Value::pair(Value::Int(i), Value::pair(Value::Int(cost), alts))
        }));
        let cheap = Morphism::Proj2
            .then(Morphism::Proj1)
            .then(Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(25))))
            .then(Morphism::Prim(Prim::Leq));
        let queries = vec![
            Morphism::Id,
            Morphism::map(Morphism::Proj1),
            derived::select(cheap.clone()),
            derived::select(cheap).then(Morphism::map(Morphism::Proj2)),
            Morphism::map(Morphism::Normalize.then(Morphism::OrToSet)).then(Morphism::Mu),
        ];
        let config = ExecConfig::default().with_workers(workers).with_batch_size(8);
        for q in queries {
            let expected = eval(&q, &relation).unwrap();
            let got = run_morphism_on_value(&relation, &q, config).unwrap();
            prop_assert_eq!(got, expected, "engine disagreed on {} ({} workers)", q, workers);
        }
    }

    /// Differential test over the **full lowerable fragment** — equi-joins,
    /// nested-loop joins, unions, flattens (dependent generators), and
    /// fanout-≥8 α-expansion — asserting that the interned engine
    /// (sequential), the interned engine (multi-worker), and the tree-walking
    /// interpreter all produce identical results, and that the sequential
    /// engine obeys the interned discipline: **exactly one `Value` decode per
    /// result row** (`ExecStats::value_decodes`).
    #[test]
    fn interned_engine_agrees_and_decodes_once_on_the_full_fragment(
        seed in any::<u64>(), rows in 1usize..=24
    ) {
        use or_engine::prelude::PhysicalPlan;
        use or_engine::{ExecConfig, Executor};
        use or_nra::derived;
        use or_nra::Prim;

        let h = |i: i64| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
        let users: Vec<Value> = (0..rows as i64)
            .map(|i| Value::pair(Value::Int(i), Value::Int((h(i) % 5) as i64)))
            .collect();
        let groups: Vec<Value> = (0..5i64)
            .map(|g| Value::pair(Value::Int(g), Value::Int(g * 7)))
            .collect();
        let fanout: Vec<Value> = (0..rows as i64)
            .map(|i| Value::pair(
                Value::Int(i),
                Value::pair(
                    Value::int_orset((0..8).map(|k| (i + k + (seed % 7) as i64) % 11)),
                    Value::int_orset((0..4).map(|k| (i * 3 + k) % 5)),
                ),
            ))
            .collect();
        let nested: Vec<Value> = (0..rows as i64)
            .map(|i| Value::pair(Value::Int(i), Value::int_set([i, i + 2, (i * 3) % 7])))
            .collect();

        // interpreter references computed on the complex-object encodings
        let equi = Morphism::pair(
            Morphism::Proj1.then(Morphism::Proj2),
            Morphism::Proj2.then(Morphism::Proj1),
        ).then(Morphism::Eq);
        let loopy = derived::both(equi.clone(), derived::always());
        let union_q = Morphism::pair(
            derived::select(
                Morphism::Proj2
                    .then(Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(2))))
                    .then(Morphism::Prim(Prim::Leq)),
            ).then(Morphism::map(Morphism::Proj1)),
            Morphism::map(Morphism::Proj2),
        ).then(Morphism::Union);
        let dependent = Morphism::map(
            Morphism::pair(Morphism::Id, Morphism::Proj2).then(Morphism::Rho2),
        ).then(Morphism::Mu);
        let expand = Morphism::map(Morphism::Normalize.then(Morphism::OrToSet)).then(Morphism::Mu);

        // (plan, interpreter query, interpreter input, engine inputs)
        let users_groups = Value::pair(Value::set(users.clone()), Value::set(groups.clone()));
        let two_slots: Vec<&[Value]> = vec![&users, &groups];
        let cases: Vec<(PhysicalPlan, Morphism, Value, Vec<&[Value]>)> = vec![
            (
                PhysicalPlan::scan(0).join(PhysicalPlan::scan(1), equi),
                derived::cartesian_product().then(derived::select(
                    Morphism::pair(Morphism::Proj1.then(Morphism::Proj2),
                                   Morphism::Proj2.then(Morphism::Proj1)).then(Morphism::Eq))),
                users_groups.clone(),
                two_slots.clone(),
            ),
            (
                PhysicalPlan::scan(0).join(PhysicalPlan::scan(1), loopy.clone()),
                derived::cartesian_product().then(derived::select(loopy)),
                users_groups,
                two_slots,
            ),
            (
                or_nra::optimize::lower(&union_q).unwrap(),
                union_q,
                Value::set(users.clone()),
                vec![&users],
            ),
            (
                or_nra::optimize::lower(&dependent).unwrap(),
                dependent,
                Value::set(nested.clone()),
                vec![&nested],
            ),
            (
                or_nra::optimize::lower(&expand).unwrap(),
                expand,
                Value::set(fanout.clone()),
                vec![&fanout],
            ),
        ];
        for (plan, query, input, slots) in cases {
            let expected = eval(&query, &input).unwrap();
            let seq = Executor::new(ExecConfig::default().with_batch_size(8));
            let (seq_rows, stats) = seq.run_with_stats(&plan, slots.as_slice()).unwrap();
            prop_assert_eq!(
                &Value::Set(seq_rows.clone()), &expected,
                "sequential engine disagreed on {}", query
            );
            // the interned discipline: rows stay ids until the boundary
            prop_assert_eq!(
                stats.value_decodes, stats.rows as u64,
                "expected one decode per result row on {}", query
            );
            let par = Executor::new(ExecConfig::default().with_workers(3).with_batch_size(8));
            let par_value = par.run_to_value(&plan, slots.as_slice()).unwrap();
            prop_assert_eq!(&par_value, &expected, "parallel engine disagreed on {}", query);
        }
    }

    /// Differential test for the morsel executor under **adversarial
    /// skew**: >90% of the rows share one join key (one hash partition of
    /// the probe table holds nearly everything) and the expensive fanout-8
    /// or-sets all live in the first tenth of the driving input (one shard
    /// of the morsel queue holds nearly all the expansion work).  Morsel
    /// execution at forced worker counts {2, 4, 8} — tiny morsels, so
    /// claims and steals actually interleave — must equal the sequential
    /// engine and the tree-walking interpreter exactly.
    #[test]
    fn morsel_execution_matches_sequential_and_interpreter_under_skew(
        seed in any::<u64>(), rows in 30usize..=120
    ) {
        use or_engine::prelude::PhysicalPlan;
        use or_engine::{ExecConfig, Executor};
        use or_nra::derived;
        use or_nra::Prim;

        let n = rows as i64;
        let hot = (rows / 10).max(1) as i64; // the skewed head of the input
        let h = |i: i64| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
        // (id, (key, <alternatives>)): key 0 for ≥90% of rows, fanout 8
        // only in the first tenth
        let skewed: Vec<Value> = (0..n)
            .map(|i| {
                let key = if i < hot { 1 + (h(i) % 4) as i64 } else { 0 };
                let fanout = if i < hot { 8 } else { 1 };
                let alts = Value::int_orset((0..fanout).map(|k| (h(i + k) % 11) as i64 + k));
                Value::pair(Value::Int(i), Value::pair(Value::Int(key), alts))
            })
            .collect();
        let groups: Vec<Value> = (0..5i64)
            .map(|g| Value::pair(Value::Int(g), Value::Int(g * 13)))
            .collect();

        // equi-join on the skewed key: snd(fst(snd(u))) …  key = fst(snd(u))
        let equi = Morphism::pair(
            Morphism::Proj1.then(Morphism::Proj2).then(Morphism::Proj1),
            Morphism::Proj2.then(Morphism::Proj1),
        ).then(Morphism::Eq);
        let join_plan = PhysicalPlan::scan(0).join(PhysicalPlan::scan(1), equi.clone());
        let join_query = derived::cartesian_product().then(derived::select(equi));
        let join_input = Value::pair(Value::set(skewed.clone()), Value::set(groups.clone()));

        // α-expansion over the skewed fanout, then a filter + projection
        let expand = Morphism::map(Morphism::Normalize.then(Morphism::OrToSet)).then(Morphism::Mu);
        let cheap = Morphism::Proj2.then(Morphism::Proj1)
            .then(Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(2))))
            .then(Morphism::Prim(Prim::Leq));
        let filter_q = derived::select(cheap).then(Morphism::map(Morphism::Proj1));

        let cases: Vec<(PhysicalPlan, Morphism, Value, Vec<&[Value]>)> = vec![
            (join_plan, join_query, join_input, vec![&skewed, &groups]),
            (
                or_nra::optimize::lower(&expand).unwrap(),
                expand,
                Value::set(skewed.clone()),
                vec![&skewed],
            ),
            (
                or_nra::optimize::lower(&filter_q).unwrap(),
                filter_q,
                Value::set(skewed.clone()),
                vec![&skewed],
            ),
        ];
        for (plan, query, input, slots) in cases {
            let expected = eval(&query, &input).unwrap();
            let seq = Executor::new(ExecConfig::sequential().with_batch_size(8));
            let seq_value = seq.run_to_value(&plan, slots.as_slice()).unwrap();
            prop_assert_eq!(&seq_value, &expected, "sequential engine disagreed on {}", query);
            for workers in [2usize, 4, 8] {
                let config = ExecConfig::default()
                    .with_pinned_workers(workers)
                    .with_morsel_rows(2)
                    .with_batch_size(8);
                let (par_rows, stats) = Executor::new(config)
                    .run_with_stats(&plan, slots.as_slice())
                    .unwrap();
                prop_assert_eq!(
                    &Value::Set(par_rows), &expected,
                    "morsel engine disagreed on {} with {} workers", query, workers
                );
                prop_assert_eq!(stats.workers, workers.min(rows));
                // the morsel merge keeps the decode-once discipline even
                // across worker overlays: duplicates merge as ids, so only
                // surviving rows are ever materialized
                prop_assert_eq!(
                    stats.value_decodes, stats.rows as u64,
                    "expected one decode per result row on {} with {} workers", query, workers
                );
            }
        }
    }

    /// Engine-first sessions (no cross-check) agree with interpreter-only
    /// sessions on generated session scripts including `union` and
    /// multi-binding comprehensions, and the engine-checked mode agrees with
    /// both; the plannable statements are actually served by the engine.
    #[test]
    fn engine_first_sessions_agree_with_interp_sessions(seed in any::<u64>(), rows in 1usize..=24, workers in 1usize..=4) {
        use or_engine::ExecConfig;
        use or_lang::session::Session;

        // deterministic relations derived from the seed
        let users = Value::set((0..rows as i64).map(|i| {
            let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
            Value::pair(Value::Int(i), Value::Int((h % 5) as i64))
        }));
        let groups = Value::set((0..5i64).map(|g| Value::pair(Value::Int(g), Value::Int(g * 7))));
        let nested = Value::set((0..rows as i64).map(|i| Value::int_set([i, i + 1, (i * 2) % 9])));
        let limit = (seed % 7) as i64;
        let script = vec![
            format!("{{ fst(u) | u <- users, snd(u) <= {limit} }}"),
            "{ (fst(u), snd(g)) | u <- users, g <- groups, snd(u) == fst(g) }".to_string(),
            format!("union({{ fst(u) | u <- users }}, {{ fst(g) | g <- groups, snd(g) <= {limit} }})"),
            "{ x | xs <- nested, x <- xs }".to_string(),
            "{ (u, g) | u <- users, g <- groups, fst(u) != fst(g) }".to_string(),
        ];
        let mut interp = Session::new();
        let mut engine = Session::with_engine(ExecConfig::default().with_workers(workers));
        let mut checked = Session::with_engine_checked(ExecConfig::default().with_workers(workers));
        for s in [&mut interp, &mut engine, &mut checked] {
            s.bind("users", users.clone());
            s.bind("groups", groups.clone());
            s.bind("nested", nested.clone());
        }
        for stmt in &script {
            let a = interp.run(stmt).unwrap();
            let b = engine.run(stmt).unwrap();
            let c = checked.run(stmt).unwrap();
            prop_assert_eq!(&a.value, &b.value, "engine-first disagreed on {}", stmt);
            prop_assert_eq!(&a.value, &c.value, "engine-checked disagreed on {}", stmt);
            prop_assert_eq!(&a.ty, &b.ty);
        }
        // every script statement is plannable: engine-first must have served
        // them all without interpreter fallback
        let stats = engine.engine_stats();
        prop_assert_eq!(stats.engine, script.len() as u64, "fallbacks: {:?}", stats.fallback_reasons);
        prop_assert_eq!(stats.fallback, 0);
    }

    /// Differential test for the **columnar** execution path: generated
    /// filter/project/join scripts must produce identical results whether
    /// batches run through the vectorized columnar kernels or the scalar
    /// row loop, at forced worker counts {1, 2, 4}, and both must agree
    /// with the tree-walking interpreter.  Adversarial selectivities are
    /// pinned alongside a seed-dependent one: a predicate no row passes,
    /// one every row passes, and one that alternates row-by-row — the
    /// selection-mask edge cases (all-zero, all-one, alternating bits).
    #[test]
    fn columnar_and_scalar_execution_agree_with_interpreter(
        seed in any::<u64>(), rows in 1usize..=48
    ) {
        use or_engine::ExecConfig;
        use or_lang::session::Session;

        // `fst(snd(u))` alternates 1/2 row-by-row, so `<= 0` keeps nothing,
        // `<= 2` keeps everything, and `<= 1` keeps exactly every other
        // row; `snd(snd(u))` is a seed-dependent payload.
        let users = Value::set((0..rows as i64).map(|i| {
            let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
            Value::pair(
                Value::Int(i),
                Value::pair(Value::Int(1 + i % 2), Value::Int((h % 97) as i64)),
            )
        }));
        let groups = Value::set((0..5i64).map(|g| Value::pair(Value::Int(g), Value::Int(g * 7))));
        let limit = (seed % 97) as i64;
        let script = [
            "{ fst(u) | u <- users, fst(snd(u)) <= 0 }".to_string(),
            "{ fst(u) | u <- users, fst(snd(u)) <= 2 }".to_string(),
            "{ fst(u) | u <- users, fst(snd(u)) <= 1 }".to_string(),
            format!("{{ snd(snd(u)) | u <- users, snd(snd(u)) <= {limit} }}"),
            "{ (fst(u), snd(g)) | u <- users, g <- groups, fst(snd(u)) == fst(g) }".to_string(),
        ];
        let mut interp = Session::new();
        interp.bind("users", users.clone());
        interp.bind("groups", groups.clone());
        let expected: Vec<Value> = script
            .iter()
            .map(|stmt| interp.run(stmt).unwrap().value)
            .collect();
        for workers in [1usize, 2, 4] {
            // batch size 8 so the generated relations span several blocks
            // and the selection masks cross block boundaries
            let base = ExecConfig::default().with_pinned_workers(workers).with_batch_size(8);
            let mut columnar = Session::with_engine(base);
            let mut scalar = Session::with_engine(base.with_columnar(false));
            for s in [&mut columnar, &mut scalar] {
                s.bind("users", users.clone());
                s.bind("groups", groups.clone());
            }
            for (stmt, want) in script.iter().zip(&expected) {
                let c = columnar.run(stmt).unwrap();
                let s = scalar.run(stmt).unwrap();
                prop_assert_eq!(
                    &c.value, want,
                    "columnar disagreed on {} ({} workers)", stmt, workers
                );
                prop_assert_eq!(
                    &s.value, want,
                    "scalar disagreed on {} ({} workers)", stmt, workers
                );
            }
            // both sessions served every statement from the engine; the
            // columnar one actually exercised the vectorized kernels while
            // the scalar one never touched them
            let c_stats = columnar.engine_stats();
            let s_stats = scalar.engine_stats();
            prop_assert_eq!(c_stats.fallback, 0, "fallbacks: {:?}", c_stats.fallback_reasons);
            prop_assert_eq!(s_stats.fallback, 0, "fallbacks: {:?}", s_stats.fallback_reasons);
            prop_assert!(c_stats.columnar_batches >= 1);
            prop_assert_eq!(s_stats.columnar_batches, 0);
        }
    }

    /// OrQL: the interpreter and the compiled algebra agree on parameterized
    /// queries over generated databases.
    #[test]
    fn orql_interpreter_agrees_with_compiler(seed in any::<u64>(), width in 1usize..=3) {
        let db = shallow_object(seed, width);
        prop_assume!(!db.elements().unwrap().is_empty());
        let queries = [
            "normalize(db)",
            "{ x | x <- db, !orisempty(x) }",
            "<| w | w <- normalize(db), member(1, w) |>",
            "alpha(db)",
        ];
        let mut env = std::collections::HashMap::new();
        env.insert("db".to_string(), db.clone());
        for q in queries {
            let expr = or_lang::parse(q).unwrap();
            let interpreted = or_lang::interpret(&expr, &env).unwrap();
            let compiled = or_lang::compile_query(&expr, "db").unwrap();
            let evaluated = eval(&compiled, &db).unwrap();
            prop_assert_eq!(interpreted, evaluated, "disagreement on {}", q);
        }
    }
}
