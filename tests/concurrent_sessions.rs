//! Concurrent-session differential test: N threads replaying interleaved
//! query scripts against ONE shared, frozen session snapshot must produce
//! exactly the answers the sequential reference interpreter produces — for
//! every engine worker count in the matrix.
//!
//! This is the serving contract of `or-server` distilled to a library-level
//! test: `SessionCore` is `Send + Sync`, `eval_statement` takes `&self`,
//! and every engine query chains a private overlay arena on the shared
//! frozen base, so concurrent readers cannot observe — or cause — any
//! mutation of the snapshot.

use std::sync::Arc;

use or_engine::ExecConfig;
use or_lang::session::{ExecMode, QueryBudget, Session, SessionCore};

/// The shared database every thread queries.
const DB_SCRIPT: &str = "\
let parts = { (1, 30), (2, 45), (3, 10), (4, 80), (5, 55), (6, 21), (7, 64), (8, 7) }
let quotes = { (1, 100), (1, 101), (2, 100), (3, 102), (4, 101), (5, 102), (6, 100), (8, 101) }
let options = { <|10, 20|>, <|30, 40|>, <|50, 60|> }
";

/// Read-only statements the threads replay, interleaved.  A mix of
/// engine-served comprehensions, joins, or-set queries and interpreter
/// fallbacks, so the concurrent run exercises both routes.
const QUERIES: &[&str] = &[
    "{ fst(p) | p <- parts, snd(p) <= 45 }",
    "{ snd(q) | q <- quotes, c <- parts, fst(q) == fst(c), snd(c) <= 30 }",
    "{ (fst(p), snd(p) + 1) | p <- parts, snd(p) >= 55 }",
    "{ x + y | x <- { 1, 2 }, y <- { 10, 20 } }",
    "alpha(options)",
    "{ p | p <- parts, snd(p) <= 10 }",
    "{ fst(q) | q <- quotes, snd(q) == 101 }",
    "{ snd(p) | p <- parts }",
];

fn frozen_core() -> SessionCore {
    let mut session = Session::with_engine(ExecConfig::default());
    session.run_script(DB_SCRIPT).expect("load shared db");
    session.into_core()
}

/// Sequential reference answers, computed by the interpreter.
fn reference_answers(core: &SessionCore) -> Vec<String> {
    QUERIES
        .iter()
        .map(|q| {
            let evaluated = core
                .eval_statement(
                    q,
                    ExecMode::Interp,
                    ExecConfig::default(),
                    QueryBudget::unlimited(),
                )
                .unwrap_or_else(|e| panic!("interp `{q}`: {e}"));
            evaluated.value.to_string()
        })
        .collect()
}

/// N threads share one `Arc<SessionCore>`; each replays every query in a
/// rotated order so different statements run concurrently against the same
/// frozen arena.  Every answer must equal the sequential interpreter's.
fn replay_concurrently(threads: usize, workers: usize) {
    let core = Arc::new(frozen_core());
    let expected = reference_answers(&core);
    let config = ExecConfig::default().with_pinned_workers(workers);
    let nodes_before = core.arena_nodes();

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let core = Arc::clone(&core);
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..3 {
                    for i in 0..QUERIES.len() {
                        // rotate by thread and round to interleave
                        let i = (i + t + round) % QUERIES.len();
                        let q = QUERIES[i];
                        let evaluated = core
                            .eval_statement(q, ExecMode::Engine, config, QueryBudget::unlimited())
                            .unwrap_or_else(|e| panic!("thread {t} `{q}`: {e}"));
                        assert_eq!(
                            evaluated.value.to_string(),
                            expected[i],
                            "thread {t} workers {workers} `{q}`"
                        );
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("replay thread");
    }

    // the shared snapshot is frozen: no reader grew its arena
    assert_eq!(core.arena_nodes(), nodes_before);
}

#[test]
fn four_threads_agree_with_sequential_interpreter_one_worker() {
    replay_concurrently(4, 1);
}

#[test]
fn four_threads_agree_with_sequential_interpreter_two_workers() {
    replay_concurrently(4, 2);
}

#[test]
fn six_threads_agree_with_sequential_interpreter_four_workers() {
    replay_concurrently(6, 4);
}

/// Writers interleaved with readers: each thread binds into its own
/// *private* session forked from the shared core, so concurrent `let`
/// statements never contend and the shared core is untouched.
#[test]
fn private_forks_can_write_while_the_shared_core_serves() {
    let core = Arc::new(frozen_core());
    let nodes_before = core.arena_nodes();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || {
                // fork: clone the shared core into a private session
                let mut session = Session::from_core(
                    (*core).clone(),
                    ExecMode::Engine,
                    ExecConfig::default().with_pinned_workers(2),
                );
                session
                    .run(&format!("let mine = {{ fst(p) + {t} | p <- parts }}"))
                    .expect("private bind");
                let result = session.run("{ x | x <- mine }").expect("read back");
                // the fork sees its own binding …
                assert!(result.value.to_string().contains(&(1 + t).to_string()));
                // … the shared core never does
                assert!(core.value("mine").is_none());
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("writer thread");
    }
    assert_eq!(core.arena_nodes(), nodes_before);
}
