//! Cross-crate integration tests: the same questions asked through the
//! object model, the algebra, the surface language and the database
//! substrate must agree.

use or_db::design::{Component, DesignTemplate, ModuleOption};
use or_db::{Cell, CoddTable, Field, Workload};
use or_lang::session::Session;
use or_lang::{compile_query, parse};
use or_logic::cnf::CnfGenerator;
use or_logic::encode;
use or_nra::coherence::check_coherence;
use or_nra::derived::{exists, or_exists};
use or_nra::expand::expand_normalize;
use or_nra::lazy::LazyNormalizer;
use or_nra::morphism::{Morphism, Prim};
use or_nra::normalize::{normalize_value_typed, RewriteStrategy};
use or_nra::prelude::{eval, output_type};
use or_object::{Type, Value};

/// A template shared by several tests.
fn controller_template() -> DesignTemplate {
    DesignTemplate::new(vec![
        Component::new(
            "cpu",
            vec![
                ModuleOption::new("m4", 12, "acme"),
                ModuleOption::new("riscv", 9, "globex"),
            ],
        ),
        Component::new(
            "radio",
            vec![
                ModuleOption::new("ble", 7, "initech"),
                ModuleOption::new("wifi", 19, "globex"),
                ModuleOption::new("none", 0, "acme"),
            ],
        ),
    ])
}

#[test]
fn design_template_counts_agree_across_layers() {
    let template = controller_template();
    // domain layer
    assert_eq!(template.completed_design_count(), 6);
    // object/normalization layer
    let v = template.to_value();
    let nf = normalize_value_typed(&v, &DesignTemplate::value_type());
    assert_eq!(nf.elements().unwrap().len(), 6);
    // lazy layer
    assert_eq!(LazyNormalizer::new(&v).total(), 6);
    // algebra layer: normalize as a morphism, type-checked
    let out_ty = output_type(&Morphism::Normalize, &DesignTemplate::value_type()).unwrap();
    assert_eq!(out_ty, DesignTemplate::value_type().normal_form());
    let out = eval(&Morphism::Normalize, &v).unwrap();
    assert_eq!(out, nf);
}

#[test]
fn budget_query_agrees_between_algebra_domain_and_orql() {
    let template = controller_template();

    // Domain layer: lazy existential query.
    let (witness, _) = template.exists_design_within_budget(17).unwrap();
    let domain_answer = witness.is_some();

    // Direct baseline.
    let direct_answer = template
        .cheapest_cost_direct()
        .map(|c| c <= 17)
        .unwrap_or(false);
    assert_eq!(domain_answer, direct_answer);

    // Algebra layer over a simplified cost-only encoding of the template:
    // an or-set of costs per component.
    let costs = Value::set(template.components.iter().enumerate().map(|(i, c)| {
        Value::pair(
            Value::Int(i as i64),
            Value::orset(c.options.iter().map(|o| Value::Int(o.cost))),
        )
    }));
    // "is there a completed choice whose costs are all <= 9?"  (a simpler
    // predicate than summation, which or-NRA cannot express without folds)
    let all_cheap = exists(
        Morphism::Proj2
            .then(Morphism::pair(
                Morphism::Id,
                Morphism::constant(Value::Int(9)),
            ))
            .then(Morphism::Prim(Prim::Leq))
            .then(Morphism::Prim(Prim::Not)),
    )
    .then(Morphism::Prim(Prim::Not));
    let query = Morphism::Normalize.then(or_exists(all_cheap));
    let algebra_answer = eval(&query, &costs).unwrap();
    assert_eq!(algebra_answer, Value::Bool(true)); // riscv (9) + none (0)

    // Surface-language layer: the same question in OrQL, compiled to the
    // algebra and evaluated on the same object.
    let orql = "<| w | w <- normalize(db), isempty({ c | c <- w, 9 < snd(c) }) |>";
    let expr = parse(orql).unwrap();
    let compiled = compile_query(&expr, "db").unwrap();
    let witnesses = eval(&compiled, &costs).unwrap();
    assert!(!witnesses.elements().unwrap().is_empty());
}

#[test]
fn orql_session_and_relation_queries_agree() {
    // per-person possible offices
    let mut workload_free_rows = [
        ("Joe", vec![515]),
        ("Mary", vec![515, 212]),
        ("Bill", vec![212, 614]),
    ];
    workload_free_rows.sort();
    let db = Value::set(workload_free_rows.iter().map(|(name, offices)| {
        Value::pair(Value::str(*name), Value::int_orset(offices.iter().copied()))
    }));

    // or-NRA query: who possibly sits in 212?
    let possibly_212 = or_nra::derived::select(Morphism::Proj2.then(or_nra::derived::or_exists(
        Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(212))).then(Morphism::Eq),
    )))
    .then(Morphism::map(Morphism::Proj1));
    let algebra = eval(&possibly_212, &db).unwrap();

    // OrQL query through a session
    let mut session = Session::new();
    session.bind("offices", db.clone());
    let orql = session
        .run("{ fst(r) | r <- offices, ormember(212, snd(r)) }")
        .unwrap();
    assert_eq!(orql.value, algebra);
    assert_eq!(
        algebra,
        Value::set([Value::str("Bill"), Value::str("Mary")])
    );
}

#[test]
fn codd_tables_round_trip_through_normalization() {
    let mut table = CoddTable::new(
        "parts",
        [Field::new("part", Type::Str), Field::new("bin", Type::Int)],
    )
    .unwrap();
    table.insert(vec![Cell::str("bolt"), Cell::int(1)]).unwrap();
    table.insert(vec![Cell::str("nut"), Cell::Null]).unwrap();
    table.insert(vec![Cell::Null, Cell::int(2)]).unwrap();

    let rel = table.to_relation_with_orsets().unwrap();
    let completions = rel.normalize();
    // every completion is a set of fully-known records drawn from the active
    // domains
    for instance in completions.elements().unwrap() {
        for record in instance.elements().unwrap() {
            let (name, bin) = record.as_pair().unwrap();
            assert!(name.as_str().is_some());
            assert!(bin.as_int().is_some());
        }
    }
    assert_eq!(
        rel.possibility_count() as usize,
        completions.elements().unwrap().len()
    );
}

#[test]
fn sat_reduction_agrees_with_dpll_on_a_workload() {
    let mut gen = CnfGenerator::new(500);
    for round in 0u32..10 {
        let cnf = gen.random_kcnf(4 + round % 3, 4 + (round as usize % 5), 3);
        let dpll = encode::sat_by_dpll(&cnf);
        assert_eq!(encode::sat_by_eager_normalization(&cnf).unwrap(), dpll);
        assert_eq!(
            encode::sat_by_lazy_normalization(&cnf).unwrap().satisfiable,
            dpll
        );
    }
}

#[test]
fn coherence_and_expansion_hold_on_database_shaped_objects() {
    let mut workload = Workload::new(77);
    let template = workload.uniform_design_template(3, 2);
    let v = template.to_value();
    let ty = DesignTemplate::value_type();
    // every rewrite strategy and the direct implementation agree
    let report = check_coherence(&v, &ty, &RewriteStrategy::portfolio()).unwrap();
    assert!(report.coherent);
    // the or-NRA expansion of normalize agrees with the primitive
    let expansion = expand_normalize(&ty).unwrap();
    assert_eq!(eval(&expansion, &v).unwrap(), report.normal_form);
}

#[test]
fn planning_and_sat_use_the_same_lazy_machinery() {
    let mut workload = Workload::new(3);
    let problem = workload.planning_problem(5, 8, 2);
    let (lazy, inspected) = problem.find_schedule_lazily().unwrap();
    let direct = problem.find_schedule_backtracking();
    assert_eq!(lazy.is_some(), direct.is_some());
    assert!(inspected <= problem.candidate_count() as u128);
}

#[test]
fn antichain_semantics_is_consistent_between_eval_and_object_layer() {
    use or_object::antichain::to_antichain;
    use or_object::BaseOrder;
    let base = BaseOrder::FlatWithNull;
    let a = Value::set([Value::pair(Value::Null, Value::Int(515))]);
    let b = Value::set([Value::pair(Value::str("Joe"), Value::Int(515))]);
    let unioned = eval(&Morphism::Union, &Value::pair(a.clone(), b.clone())).unwrap();
    let anti_eval =
        or_nra::eval::eval_antichain(base, &Morphism::Union, &Value::pair(a, b)).unwrap();
    assert_eq!(anti_eval, to_antichain(base, &unioned));
}
