//! The static plan verifier against the planners: property tests that the
//! rule catalog (`or_nra::verify`, `docs/ANALYZE.md`) produces **no false
//! positives** on any plan the repository's own planners emit — random
//! session scripts through `plan.rs`/`compile_query`+`lower`, and
//! α-expansion pipelines through the expand planner — plus end-to-end
//! checks that the engine's verification gate rejects a hand-built
//! malformed plan with the documented rule ID.

use proptest::prelude::*;

use or_db::{Field, Relation, Schema};
use or_engine::{run_plan, run_plan_optimized, EngineError, ExecConfig};
use or_lang::{ExecMode, QueryBudget, SessionCore};
use or_nra::morphism::{Morphism as M, Prim};
use or_nra::optimize::lower;
use or_nra::physical::PhysicalPlan;
use or_nra::verify::{first_deny, verify_plan, VerifyConfig};
use or_object::{Type, Value};

/// A pool of session statements covering every plannable shape the direct
/// planner serves (filters, projections, joins, unions, dependent
/// generators) plus `let` bindings and interpreter-only fallbacks.  The
/// property quantifies over random subsequences of these at random scales.
fn statement_pool(k: i64) -> Vec<String> {
    vec![
        format!("{{ fst(p) | p <- parts, snd(p) <= {k} }}"),
        "{ (fst(x), snd(y)) | x <- parts, y <- users, fst(x) == fst(y) }".to_string(),
        format!("let cheap = {{ fst(p) | p <- parts, snd(p) <= {k} }}"),
        "union({ fst(p) | p <- parts, snd(p) <= 10 }, { fst(u) | u <- users, snd(u) == 0 })"
            .to_string(),
        "{ x | xs <- nested, x <- xs }".to_string(),
        format!("{{ (snd(p), fst(p)) | p <- parts, {k} <= snd(p) }}"),
        // outside the plannable fragment: exercises the fallback path
        "normalize(design)".to_string(),
    ]
}

fn session_core(scale: i64, seed: i64) -> SessionCore {
    let mut core = SessionCore::new();
    core.bind(
        "parts",
        Value::set(
            (0..scale).map(|i| Value::pair(Value::Int(i), Value::Int((i * 7 + seed % 13) % 100))),
        ),
    );
    core.bind(
        "users",
        Value::set((0..scale / 2).map(|i| Value::pair(Value::Int(i), Value::Int(i % 5)))),
    );
    core.bind(
        "nested",
        Value::set((0..scale / 4).map(|i| Value::int_set([i, i + 1]))),
    );
    core.bind(
        "design",
        Value::set([Value::int_orset([1, 2]), Value::int_orset([3, 4, 5])]),
    );
    core
}

/// An `(id, (<cpu alts>, <ram alts>))` relation with or-set fields, the
/// α-expansion workload shape.
fn orset_relation(rows: i64, seed: i64) -> Relation {
    let schema = Schema::new([
        Field::new("id", Type::Int),
        Field::new("cpu", Type::orset(Type::Int)),
        Field::new("ram", Type::orset(Type::Int)),
    ])
    .expect("schema is well-formed");
    Relation::from_records(
        "randomized",
        schema,
        (0..rows).map(|i| {
            Value::pair(
                Value::Int(i),
                Value::pair(
                    Value::int_orset([(i + seed) % 5, (i + seed + 1) % 5]),
                    Value::int_orset([i % 3, (i + 2) % 3, (i + 4) % 3]),
                ),
            )
        }),
    )
    .expect("records match the schema")
}

/// The α-expansion morphism (`μ ∘ map(ortoset ∘ normalize)`).
fn expand_query() -> M {
    M::map(M::Normalize.then(M::OrToSet)).then(M::Mu)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// Every plan the session planners produce for a random script
    /// verifies with zero deny-severity findings, and engine-first
    /// evaluation (which in debug builds runs the verification gate on
    /// every engine-served statement) succeeds.
    #[test]
    fn session_plans_verify_clean(
        seed in any::<u64>(),
        picks in proptest::collection::vec(0usize..16, 1..10),
    ) {
        let seed = (seed % 1_000) as i64;
        let scale = 4 + seed % 40;
        let mut core = session_core(scale, seed);
        let pool = statement_pool(seed % 100);
        for &pick in &picks {
            let stmt = &pool[pick % pool.len()];
            let planned = core.plan_statement(stmt);
            prop_assert!(planned.is_ok(), "`{}` failed to plan: {:?}", stmt, planned.err());
            if let Ok(Some(planned)) = planned {
                let config = VerifyConfig {
                    provided_inputs: Some(planned.inputs.len()),
                    row_types: planned.row_types.clone(),
                    ..VerifyConfig::default()
                };
                let violations = verify_plan(&planned.plan, &config);
                prop_assert!(
                    first_deny(&violations).is_none(),
                    "false positive on `{}`: {:?}\nplan:\n{}",
                    stmt, violations, planned.plan
                );
            }
            let evaluated = core.eval_statement(
                stmt,
                ExecMode::Engine,
                ExecConfig::default(),
                QueryBudget::unlimited(),
            );
            prop_assert!(evaluated.is_ok(), "`{}` failed: {:?}", stmt, evaluated.err());
            core.commit(evaluated.expect("checked above"));
        }
    }

    /// Every plan `lower()` and the expand planner emit for randomized
    /// α-expansion pipelines verifies clean, and the schema-aware engine
    /// entry point (whose gate verifies the *optimized* plan in debug
    /// builds) executes it.
    #[test]
    fn expansion_plans_verify_clean(
        seed in any::<u64>(),
        rows in 1i64..24,
        limit in 0i64..40,
    ) {
        let relation = orset_relation(rows, (seed % 97) as i64);
        let keep = M::Proj1
            .then(M::pair(M::Id, M::constant(Value::Int(limit))))
            .then(M::Prim(Prim::Leq));
        let planned = expand_query().then(or_nra::derived::select(keep));
        for query in [expand_query(), planned] {
            let plan = lower(&query).expect("expansion pipelines lower");
            let config = VerifyConfig {
                provided_inputs: Some(1),
                row_types: vec![Some(relation.schema().record_type())],
                ..VerifyConfig::default()
            };
            let violations = verify_plan(&plan, &config);
            prop_assert!(
                first_deny(&violations).is_none(),
                "false positive on `{}`: {:?}",
                query, violations
            );
            let run = run_plan_optimized(&plan, &[&relation], ExecConfig::default());
            prop_assert!(run.is_ok(), "`{}` failed: {:?}", query, run.err());
        }
    }
}

/// The engine gate end-to-end: a hand-built plan that pushes a
/// non-preserving predicate below an α-expansion (structural equality
/// over or-set fields — the Section 5 counterexample class) is rejected
/// before execution with the documented rule ID, through the public
/// schema-aware entry point.
#[test]
fn engine_gate_rejects_non_preserving_filter_below_expand() {
    let relation = orset_relation(4, 0);
    let plan = PhysicalPlan::scan(0)
        .filter(M::Proj2.then(M::Eq))
        .or_expand();
    let config = ExecConfig {
        verify: true, // explicit: the test must hold in release builds too
        ..ExecConfig::default()
    };
    match run_plan(&plan, &[&relation], config) {
        Err(EngineError::InvariantViolation { rule, path, .. }) => {
            assert_eq!(rule, "V08");
            assert!(path.contains("Filter"), "path locates the filter: {path}");
        }
        other => panic!("expected a V08 invariant violation, got {other:?}"),
    }
}

/// With verification off, the same malformed plan reaches the executor —
/// the gate, not the executor, is what rejects it.
#[test]
fn the_gate_is_what_rejects_malformed_plans() {
    let relation = orset_relation(4, 0);
    let plan = PhysicalPlan::scan(0)
        .filter(M::Proj2.then(M::Eq))
        .or_expand();
    let config = ExecConfig {
        verify: false,
        ..ExecConfig::default()
    };
    // The unsound plan *executes* (producing whatever it produces) — only
    // the verifier knows it disagrees with expand-then-filter semantics.
    assert!(run_plan(&plan, &[&relation], config).is_ok());
}
