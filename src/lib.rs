//! # or-sets — a reproduction of "Semantic Representations and Query
//! # Languages for Or-Sets" (Libkin & Wong, PODS 1993)
//!
//! This facade crate re-exports the workspace members so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`or_object`] — complex objects, or-sets, partial-information orders,
//!   antichain semantics, modal theories;
//! * [`or_nra`] — the structural query language or-NRA and the conceptual
//!   language or-NRA⁺ (normalization, coherence, losslessness, cost bounds,
//!   derived operators, optimizer);
//! * [`or_logic`] — CNF formulae, a DPLL baseline, and the Section 6
//!   reduction of SAT to existential queries over normal forms;
//! * [`or_lang`] — OrQL, the comprehension-based surface language (the
//!   OR-SML analogue) with type checker, compiler to or-NRA and REPL;
//! * [`or_db`] — the design/planning database substrate: record schemas,
//!   relations, Codd-table import, and synthetic workload generators;
//! * [`or_engine`] — the streaming, parallel physical query engine:
//!   or-NRA⁺ morphisms lower to volcano-style plans executed over
//!   partitioned relation scans with per-worker batches.
//!
//! See the repository's `README.md` for a guided tour (crate map, the
//! engine's operator model, and how to run the experiment suite).  The
//! `experiments` binary in `or-bench` reproduces the quantitative claims
//! (experiments E1–E12) and measures the engine against the interpreter
//! (E13, archived as `BENCH_engine.json`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use or_db;
pub use or_engine;
pub use or_lang;
pub use or_logic;
pub use or_nra;
pub use or_object;
