//! Quickstart: or-sets in five minutes.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example follows the introduction of the paper: a design template whose
//! component can be built from one of several modules is *structurally* a
//! complex object containing an or-set, and *conceptually* one of the
//! completed designs.  `normalize` moves from the first view to the second,
//! and queries can be asked at either level.

use or_lang::session::Session;
use or_nra::derived::or_exists;
use or_nra::morphism::{Morphism, Prim};
use or_nra::normalize::normalize_value;
use or_nra::prelude::eval;
use or_object::Value;

fn main() {
    // ------------------------------------------------------------------
    // 1. Complex objects: sets {…}, or-sets <…>, pairs (…, …)
    // ------------------------------------------------------------------
    // "component A can be built by module 4 or module 7"
    let component_a = Value::pair(Value::str("A"), Value::int_orset([4, 7]));
    // "component B needs module 1"
    let component_b = Value::pair(Value::str("B"), Value::int_orset([1]));
    let template = Value::set([component_a, component_b]);
    println!("structural view of the template:\n  {template}");

    // ------------------------------------------------------------------
    // 2. The conceptual view: normalize
    // ------------------------------------------------------------------
    let completed = normalize_value(&template);
    println!("\nconceptual view (all completed designs):\n  {completed}");
    println!(
        "  -> {} completed designs",
        completed.elements().map_or(0, <[Value]>::len)
    );

    // ------------------------------------------------------------------
    // 3. A conceptual query in the algebra (or-NRA+)
    //    "is there a completed design that uses module 7?"
    // ------------------------------------------------------------------
    let uses_module_7 = or_nra::derived::exists(
        Morphism::Proj2
            .then(Morphism::pair(
                Morphism::Id,
                Morphism::constant(Value::Int(7)),
            ))
            .then(Morphism::Eq),
    );
    let query = Morphism::Normalize.then(or_exists(uses_module_7));
    let answer = eval(&query, &template).expect("query evaluates");
    println!("\npossibly uses module 7?  {answer}");

    // a numeric query: is some design cost below 100?
    let cheap_template = Value::int_orset([120, 80, 250]);
    let ischeap = Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(100)))
        .then(Morphism::Prim(Prim::Leq));
    let cheap_query = Morphism::Normalize.then(or_exists(ischeap));
    println!(
        "is there a cheap completed design in {cheap_template}?  {}",
        eval(&cheap_query, &cheap_template).unwrap()
    );

    // ------------------------------------------------------------------
    // 4. The same ideas in the OrQL surface language
    // ------------------------------------------------------------------
    let mut session = Session::new();
    session.bind("design", Value::int_orset([120, 80, 250]));
    for stmt in [
        "normalize(design)",
        "<| x | x <- normalize(design), x <= 100 |>",
        "let db = { <|1,2|>, <|3|> }",
        "alpha(db)",
        "normalize(db)",
    ] {
        match session.run(stmt) {
            Ok(result) => println!("orql> {stmt}\n  : {} = {}", result.ty, result.value),
            Err(e) => println!("orql> {stmt}\n  error: {e}"),
        }
    }
}
