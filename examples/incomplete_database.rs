//! Incomplete information: from Codd tables to or-sets.
//!
//! Run with `cargo run --example incomplete_database`.
//!
//! Section 3 of the paper places or-sets in the tradition of partial
//! information in databases: values are ordered by "how informative" they
//! are, sets by the Hoare order, or-sets by the Smyth order.  This example
//! starts from a classical Codd table with nulls, imports it either as
//! flat-domain nulls or as closed-world or-sets, and shows how the order,
//! the antichain semantics, and normalization interact.

use or_db::codd::{Cell, CoddTable};
use or_db::schema::Field;
use or_object::antichain::to_antichain;
use or_object::order::object_leq;
use or_object::prelude::*;
use or_object::Type;

fn main() {
    // The office-assignment example of Section 3.
    let mut table = CoddTable::new(
        "offices",
        [
            Field::new("name", Type::Str),
            Field::new("office", Type::Int),
        ],
    )
    .unwrap();
    table
        .insert(vec![Cell::str("Joe"), Cell::int(515)])
        .unwrap();
    table.insert(vec![Cell::Null, Cell::int(212)]).unwrap();
    table.insert(vec![Cell::str("Mary"), Cell::Null]).unwrap();
    println!(
        "Codd table with {} rows, {:.0}% of cells null",
        table.len(),
        table.null_ratio() * 100.0
    );

    // 1. Flat-domain import: nulls become the bottom element of a flat order.
    let with_nulls = table.to_relation_with_nulls().unwrap();
    println!("\nflat-domain import: {}", with_nulls.to_value());
    let partial = with_nulls.records()[1].clone();
    let completed = Value::pair(Value::str("Bill"), Value::Int(212));
    println!(
        "  {partial}  <=  {completed} ?  {}",
        object_leq(BaseOrder::FlatWithNull, &partial, &completed)
    );

    // 2. Closed-world or-set import: a null becomes the or-set of the values
    //    seen in its column.
    let with_orsets = table.to_relation_with_orsets().unwrap();
    println!("\nor-set import: {}", with_orsets.to_value());
    println!(
        "  the table stands for {} complete instances",
        with_orsets.possibility_count()
    );
    println!("  conceptual view: {}", with_orsets.normalize());

    // 3. The antichain semantics removes redundant, less-informative rows.
    let redundant = Value::set([
        Value::pair(Value::Null, Value::Int(515)),
        Value::pair(Value::str("Joe"), Value::Int(515)),
        Value::pair(Value::str("Bill"), Value::Int(212)),
    ]);
    println!("\nredundant set:      {redundant}");
    println!(
        "antichain semantics: {}",
        to_antichain(BaseOrder::FlatWithNull, &redundant)
    );

    // 4. Orders on or-sets: removing alternatives adds information.
    let vague = Value::int_orset([212, 515, 614]);
    let sharper = Value::int_orset([515]);
    println!(
        "\n{vague}  <=  {sharper} ?  {}   (or-sets gain information by shrinking)",
        object_leq(BaseOrder::FlatWithNull, &vague, &sharper)
    );
    let empty = Value::empty_orset();
    println!(
        "{sharper}  <=  <> ?  {}   (the empty or-set is inconsistency, comparable to nothing)",
        object_leq(BaseOrder::FlatWithNull, &sharper, &empty)
    );
}
