//! The Section 6 reduction, end to end: CNF satisfiability as an existential
//! query over a normal form.
//!
//! Run with `cargo run --example sat_via_normalization`.
//!
//! A CNF formula becomes an object of type `{<int × bool>}` (a set of
//! clauses, each an or-set of signed literals).  Conceptually the object
//! stands for every way of choosing one literal per clause; the formula is
//! satisfiable exactly when some choice satisfies the functional dependency
//! "variable determines polarity".  The example decides a few formulas with
//! all three strategies — eager normalization, lazy normalization with early
//! exit, and the DPLL baseline — and prints what each had to do.

use or_logic::cnf::{Clause, Cnf, CnfGenerator, Literal};
use or_logic::encode;

fn describe(name: &str, cnf: &Cnf) {
    println!("--- {name}: {cnf}");
    let encoded = encode::encode_cnf(cnf);
    println!("    encoded object: {encoded}");
    let eager = encode::sat_by_eager_normalization(cnf).expect("eager");
    let lazy = encode::sat_by_lazy_normalization(cnf).expect("lazy");
    let dpll = encode::sat_by_dpll(cnf);
    println!(
        "    eager normalization: {}   lazy: {} ({} of {} candidates inspected)   dpll: {}",
        eager, lazy.satisfiable, lazy.inspected, lazy.total, dpll
    );
    if let Some(witness) = &lazy.witness {
        let assignment = encode::assignment_from_witness(witness, cnf.num_vars).unwrap();
        println!("    witness choice {witness}  ->  assignment {assignment:?}");
        assert!(cnf.satisfied_by(&assignment));
    }
    assert_eq!(eager, dpll);
    assert_eq!(lazy.satisfiable, dpll);
}

fn main() {
    // (x0 ∨ x1) ∧ (¬x0 ∨ x2) ∧ (¬x1 ∨ ¬x2)
    let hand_written = Cnf::new([
        Clause::new([Literal::pos(0), Literal::pos(1)]),
        Clause::new([Literal::neg(0), Literal::pos(2)]),
        Clause::new([Literal::neg(1), Literal::neg(2)]),
    ]);
    describe("hand-written satisfiable formula", &hand_written);

    // x0 ∧ ¬x0, padded
    let contradiction = Cnf::new([
        Clause::new([Literal::pos(0)]),
        Clause::new([Literal::neg(0)]),
        Clause::new([Literal::pos(1), Literal::pos(2)]),
    ]);
    describe("contradictory formula", &contradiction);

    let mut gen = CnfGenerator::new(2026);
    describe(
        "random 3-CNF (8 vars, 9 clauses)",
        &gen.random_kcnf(8, 9, 3),
    );
    describe(
        "planted satisfiable 3-CNF (7 vars, 9 clauses)",
        &gen.planted_satisfiable(7, 9, 3),
    );
    describe(
        "constructed unsatisfiable 3-CNF",
        &gen.unsatisfiable(6, 8, 3),
    );

    println!();
    println!(
        "The exponential gap the paper's Section 6 predicts: the encoded object is linear in the"
    );
    println!(
        "formula, the normal form is exponential, and the existential query is NP-hard — which is"
    );
    println!("why the lazy strategy (and the DPLL baseline) matter in practice.");
}
