//! A product configurator over a design-template database.
//!
//! Run with `cargo run --example design_configurator`.
//!
//! This is the motivating application of Imielinski–Naqvi–Vadaparty and of
//! the paper's introduction: an engineer builds a template in which every
//! component records its alternative realizations (an or-set); the tool then
//! answers *structural* questions ("what are my options?") and *conceptual*
//! questions ("is there a completed design under budget?", "which one is
//! cheapest?") — the latter by normalization, evaluated lazily so that a
//! witness is found without enumerating the whole design space.

use or_db::design::{Component, DesignTemplate, ModuleOption};
use or_db::Workload;

fn main() {
    // A hand-written template for a small controller board.
    let template = DesignTemplate::new(vec![
        Component::new(
            "cpu",
            vec![
                ModuleOption::new("cortex-m4", 12, "acme"),
                ModuleOption::new("cortex-m7", 21, "acme"),
                ModuleOption::new("riscv-e31", 9, "globex"),
            ],
        ),
        Component::new(
            "radio",
            vec![
                ModuleOption::new("ble-5", 7, "initech"),
                ModuleOption::new("wifi-6", 19, "globex"),
            ],
        ),
        Component::new(
            "power",
            vec![
                ModuleOption::new("buck-3v3", 4, "acme"),
                ModuleOption::new("ldo-3v3", 2, "umbrella"),
                ModuleOption::new("pmic", 11, "initech"),
            ],
        ),
    ]);

    println!("structural object:\n  {}\n", template.to_value());

    // Structural query: the recorded options for one component.
    println!("choices for the cpu component:");
    for option in template.choices_for("cpu").unwrap() {
        println!(
            "  {} ({} credits, {})",
            option.module, option.cost, option.vendor
        );
    }

    // Conceptual queries.
    println!(
        "\nthe template stands for {} completed designs",
        template.completed_design_count()
    );
    let budget = 25;
    match template.exists_design_within_budget(budget).unwrap() {
        (Some(design), inspected) => {
            println!(
                "a design within budget {budget} exists (found after inspecting {inspected} candidates):"
            );
            for (component, module, cost, vendor) in &design.choices {
                println!("  {component}: {module} from {vendor} ({cost} credits)");
            }
            println!("  total: {} credits", design.total_cost());
        }
        (None, inspected) => {
            println!("no design fits budget {budget} (checked {inspected} candidates)")
        }
    }

    let cheapest = template.cheapest_design().unwrap();
    println!(
        "\ncheapest design costs {} credits (direct bound: {:?})",
        cheapest.total_cost(),
        template.cheapest_cost_direct()
    );

    // A larger synthetic template shows the exponential design space that
    // makes lazy evaluation worthwhile.
    let big = Workload::new(7).uniform_design_template(10, 3);
    println!(
        "\nsynthetic template: 10 components x 3 alternatives = {} designs",
        big.completed_design_count()
    );
    let (witness, inspected) = big.exists_design_within_budget(10 * 60).unwrap();
    println!(
        "  budget query inspected {inspected} candidates and {}",
        if witness.is_some() {
            "found a design"
        } else {
            "found nothing"
        }
    );
}
