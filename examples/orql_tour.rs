//! A scripted tour of the OrQL surface language.
//!
//! Run with `cargo run --example orql_tour` (or start the interactive REPL
//! with `cargo run -p or-lang --bin orql`).
//!
//! The script walks through the constructs the paper's OR-SML implementation
//! offered: building sets and or-sets, comprehensions at the structural
//! level, `normalize` to move to the conceptual level, and the derived
//! set/or-set library.  The session runs **engine-first**: every plannable
//! statement — including the multi-binding join and the `union` below — is
//! served by the physical engine, and the closing statistics show which
//! statements fell back to the interpreter and why.

use or_engine::ExecConfig;
use or_lang::session::Session;
use or_object::Value;

fn main() {
    let mut session = Session::with_engine(ExecConfig::parallel());

    // bind an external database value: per-person possible office assignments
    session.bind(
        "offices",
        Value::set([
            Value::pair(Value::str("Joe"), Value::int_orset([515])),
            Value::pair(Value::str("Mary"), Value::int_orset([515, 212])),
            Value::pair(Value::str("Bill"), Value::int_orset([212, 614])),
        ]),
    );
    // and a second relation: per-person departments
    session.bind(
        "departments",
        Value::set([
            Value::pair(Value::str("Joe"), Value::str("CS")),
            Value::pair(Value::str("Mary"), Value::str("EE")),
            Value::pair(Value::str("Bill"), Value::str("CS")),
        ]),
    );

    let script = [
        "# structural level -------------------------------------------------",
        "offices",
        "{ fst(r) | r <- offices }",
        "{ fst(r) | r <- offices, ormember(212, snd(r)) }",
        "# multi-relation queries (engine-served joins and unions) -----------",
        "{ (fst(r), snd(d)) | r <- offices, d <- departments, fst(r) == fst(d) }",
        "union({ fst(r) | r <- offices }, { fst(d) | d <- departments, snd(d) == \"CS\" })",
        "# conceptual level -------------------------------------------------",
        "normalize(offices)",
        "<| w | w <- normalize(offices), member((\"Mary\", 212), w) |>",
        "# a design-template style query ------------------------------------",
        "let design = { <|10, 25|>, <|7, 9, 30|> }",
        "alpha(design)",
        "<| w | w <- normalize(design), member(7, w) |>",
        "# derived library ---------------------------------------------------",
        "let a = {1, 2, 3, 4}",
        "let b = {3, 4, 5}",
        "(intersect(a, b), difference(a, b))",
        "subset(intersect(a, b), a) && member(5, b)",
        "powerset({1, 2})",
        "if orisempty(<| |>) then \"inconsistent\" else \"fine\"",
    ];

    for line in script {
        if let Some(comment) = line.strip_prefix('#') {
            println!("\n#{comment}");
            continue;
        }
        match session.run(line) {
            Ok(result) => {
                let name = result.bound.unwrap_or_else(|| "-".to_string());
                println!("orql> {line}\n{name} : {} = {}", result.ty, result.value);
            }
            Err(e) => println!("orql> {line}\nerror: {e}"),
        }
    }

    let stats = session.engine_stats();
    println!(
        "\n# engine statistics: {} statement(s) engine-served, {} interpreter fallback(s)",
        stats.engine, stats.fallback
    );
    for reason in &stats.fallback_reasons {
        println!("#   fallback: {reason}");
    }
}
