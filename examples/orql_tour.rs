//! A scripted tour of the OrQL surface language.
//!
//! Run with `cargo run --example orql_tour` (or start the interactive REPL
//! with `cargo run -p or-lang --bin orql`).
//!
//! The script walks through the constructs the paper's OR-SML implementation
//! offered: building sets and or-sets, comprehensions at the structural
//! level, `normalize` to move to the conceptual level, and the derived
//! set/or-set library.

use or_lang::session::Session;
use or_object::Value;

fn main() {
    let mut session = Session::new();

    // bind an external database value: per-person possible office assignments
    session.bind(
        "offices",
        Value::set([
            Value::pair(Value::str("Joe"), Value::int_orset([515])),
            Value::pair(Value::str("Mary"), Value::int_orset([515, 212])),
            Value::pair(Value::str("Bill"), Value::int_orset([212, 614])),
        ]),
    );

    let script = [
        "# structural level -------------------------------------------------",
        "offices",
        "{ fst(r) | r <- offices }",
        "{ fst(r) | r <- offices, ormember(212, snd(r)) }",
        "# conceptual level -------------------------------------------------",
        "normalize(offices)",
        "<| w | w <- normalize(offices), member((\"Mary\", 212), w) |>",
        "# a design-template style query ------------------------------------",
        "let design = { <|10, 25|>, <|7, 9, 30|> }",
        "alpha(design)",
        "<| w | w <- normalize(design), member(7, w) |>",
        "# derived library ---------------------------------------------------",
        "let a = {1, 2, 3, 4}",
        "let b = {3, 4, 5}",
        "(intersect(a, b), difference(a, b))",
        "subset(intersect(a, b), a) && member(5, b)",
        "powerset({1, 2})",
        "if orisempty(<| |>) then \"inconsistent\" else \"fine\"",
    ];

    for line in script {
        if let Some(comment) = line.strip_prefix('#') {
            println!("\n#{comment}");
            continue;
        }
        match session.run(line) {
            Ok(result) => {
                let name = result.bound.unwrap_or_else(|| "-".to_string());
                println!("orql> {line}\n{name} : {} = {}", result.ty, result.value);
            }
            Err(e) => println!("orql> {line}\nerror: {e}"),
        }
    }
}
